"""Equivalence tests for the compiled bit-packed engine.

The compiled engine (packed logic evaluation + arrival-threshold timing
masks) must be bit-exact against the reference implementations on every
design of the library: the exact adder architectures and the paper's
approximate (ISA) configurations, for random vectors and for ragged
trace lengths that do not divide the 64-cycle word size.
"""

import numpy as np
import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.compiled import (PackedTimingProgram, pack_bits, packed_word_count,
                                    rows_to_words, unpack_bits)
from repro.circuit.library import default_library
from repro.circuit.netlist import Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.core.config import ISAConfig
from repro.exceptions import SimulationError
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.timing.event_sim import Waveform
from repro.timing.fast_sim import FastTimingSimulator
from repro.timing.operands import expand_operand_traces
from repro.workloads.generators import uniform_workload

RAGGED_LENGTHS = (1, 5, 63, 64, 65, 130)

EXACT_ARCHITECTURES = ("ripple", "cla", "brent-kung", "kogge-stone")

#: A representative slice of the paper's ISA quadruples (plain, SPEC,
#: correction and reduction mechanisms all covered).
ISA_QUADRUPLES = ((8, 0, 0, 0), (8, 0, 1, 4), (16, 1, 0, 2), (16, 2, 1, 6))


def _random_operands(width, length, seed):
    trace = uniform_workload(length, width=width, seed=seed)
    return {"A": trace.a, "B": trace.b,
            "cin": np.zeros(length, dtype=np.uint64)}


@pytest.fixture(scope="module", params=EXACT_ARCHITECTURES)
def exact_design(request):
    return synthesize(exact_adder_netlist(16, request.param))


@pytest.fixture(scope="module", params=ISA_QUADRUPLES,
                ids=lambda q: "isa" + "-".join(map(str, q)))
def isa_design(request):
    return synthesize(ISAConfig.from_quadruple(request.param))


class TestPacking:
    @pytest.mark.parametrize("length", RAGGED_LENGTHS)
    def test_pack_unpack_roundtrip(self, rng, length):
        bits = rng.integers(0, 2, length).astype(np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (packed_word_count(length),)
        assert np.array_equal(unpack_bits(packed, length), bits)

    def test_pack_matrix(self, rng):
        bits = rng.integers(0, 2, (5, 100)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 100), bits)

    def test_rows_to_words(self, rng):
        bits = rng.integers(0, 2, (3, 70)).astype(np.uint8)
        words = rows_to_words(pack_bits(bits), 70)
        expected = bits[0] | (bits[1] << 1) | (bits[2] << 2)
        assert np.array_equal(words, expected.astype(np.uint64))

    @pytest.mark.parametrize("length", RAGGED_LENGTHS)
    def test_rows_to_words_matches_per_position_loop(self, rng, length):
        """The broadcast shift-and-reduce equals the old per-position loop."""
        rows = pack_bits(rng.integers(0, 2, (17, length)).astype(np.uint8))
        reference = np.zeros(length, dtype=np.uint64)
        bits = unpack_bits(rows, length)
        for position in range(rows.shape[0]):
            reference |= bits[position].astype(np.uint64) << np.uint64(position)
        assert np.array_equal(rows_to_words(rows, length), reference)

    def test_rows_to_words_stacked_traces(self, rng):
        """A (bits, traces, words) stack decodes each trace independently."""
        stacked_bits = rng.integers(0, 2, (5, 3, 100)).astype(np.uint8)
        stacked = pack_bits(stacked_bits)  # (5, 3, words)
        words = rows_to_words(stacked, 100)
        assert words.shape == (3, 100)
        for trace in range(3):
            assert np.array_equal(words[trace],
                                  rows_to_words(stacked[:, trace], 100))

    def test_rows_to_words_empty_rows(self):
        assert np.array_equal(rows_to_words(np.empty((0, 2), dtype=np.uint64), 90),
                              np.zeros(90, dtype=np.uint64))


class TestLogicEquivalence:
    """Compiled packed evaluation vs the reference per-gate uint8 loop."""

    def test_exact_adders_bit_exact(self, exact_design, rng):
        netlist = exact_design.netlist
        operands = _random_operands(16, 500, 11)
        compiled = netlist.compute_words(operands, engine="compiled")
        reference = netlist.compute_words(operands, engine="reference")
        assert np.array_equal(compiled, reference)

    def test_isa_adders_bit_exact(self, isa_design, rng):
        netlist = isa_design.netlist
        operands = _random_operands(32, 500, 13)
        compiled = netlist.compute_words(operands, engine="compiled")
        reference = netlist.compute_words(operands, engine="reference")
        assert np.array_equal(compiled, reference)

    @pytest.mark.parametrize("length", RAGGED_LENGTHS)
    def test_ragged_lengths(self, exact_design, length):
        netlist = exact_design.netlist
        operands = _random_operands(16, length, 17 + length)
        compiled = netlist.compute_words(operands, engine="compiled")
        reference = netlist.compute_words(operands, engine="reference")
        assert np.array_equal(compiled, reference)

    def test_evaluate_every_net(self, exact_design):
        """The full per-net value dict agrees between tiers."""
        netlist = exact_design.netlist
        operands = _random_operands(16, 77, 23)
        bits = expand_operand_traces(netlist, operands)
        compiled = netlist.evaluate(bits, engine="compiled")
        reference = netlist.evaluate(bits, engine="reference")
        for net in netlist.nets:
            ref = np.broadcast_to(np.asarray(reference[net], dtype=np.uint8), (77,))
            assert np.array_equal(compiled[net], ref), f"net {net} diverges"

    def test_scalar_stimulus_stays_on_reference(self):
        netlist = exact_adder_netlist(8, "ripple")
        values = netlist.evaluate({net: 1 for net in netlist.inputs})
        assert int(np.asarray(values[netlist.outputs[0]])) in (0, 1)
        with pytest.raises(SimulationError):
            netlist.evaluate({net: 1 for net in netlist.inputs}, engine="compiled")

    def test_unknown_engine_rejected(self):
        netlist = exact_adder_netlist(8, "ripple")
        with pytest.raises(SimulationError):
            netlist.evaluate({net: 1 for net in netlist.inputs}, engine="warp")
        with pytest.raises(SimulationError):
            netlist.compute_words(_random_operands(8, 4, 3), engine="warp")

    def test_compute_words_rejects_non_binary_scalar_nets(self):
        """The compiled fast path must validate like the reference path."""
        netlist = exact_adder_netlist(8, "ripple")
        operands = _random_operands(8, 16, 5)
        operands["cin"] = np.full(16, 2, dtype=np.uint64)
        for engine in ("auto", "reference"):
            with pytest.raises(SimulationError):
                netlist.compute_words(operands, engine=engine)


class TestTimingEquivalence:
    """Compiled packed timing vs the dense float reference engine."""

    def _assert_engines_agree(self, design, operands, clock_periods):
        compiled = FastTimingSimulator(design.netlist, design.annotation,
                                       engine="compiled")
        reference = FastTimingSimulator(design.netlist, design.annotation,
                                        engine="reference")
        assert compiled.engine == "compiled"
        assert reference.engine == "reference"
        got = compiled.run_trace_multi(operands, clock_periods)
        want = reference.run_trace_multi(operands, clock_periods)
        for clk in clock_periods:
            assert np.array_equal(got[clk].settled_words, want[clk].settled_words)
            assert np.array_equal(got[clk].sampled_words, want[clk].sampled_words)

    def test_exact_adders(self, exact_design, clock_plan):
        critical = exact_design.critical_path_delay
        clocks = list(clock_plan.periods) + [critical * 0.5, critical * 1.5]
        self._assert_engines_agree(exact_design, _random_operands(16, 300, 31), clocks)

    def test_isa_adders(self, isa_design, clock_plan):
        critical = isa_design.critical_path_delay
        clocks = list(clock_plan.periods) + [critical * 0.7]
        self._assert_engines_agree(isa_design, _random_operands(32, 300, 37), clocks)

    def test_empty_clock_list_returns_empty_on_both_engines(self, exact_design):
        operands = _random_operands(16, 20, 29)
        for engine in ("compiled", "reference"):
            simulator = FastTimingSimulator(exact_design.netlist, exact_design.annotation,
                                            engine=engine)
            assert simulator.run_trace_multi(operands, []) == {}

    @pytest.mark.parametrize("length", (2, 64, 65, 129))
    def test_ragged_trace_lengths(self, exact_design, length):
        critical = exact_design.critical_path_delay
        self._assert_engines_agree(exact_design, _random_operands(16, length, 41 + length),
                                   [critical * 0.8])

    def test_error_statistics_match(self, isa_design, clock_plan):
        """Cycle/bit error rates — the paper's metrics — are identical."""
        operands = _random_operands(32, 400, 43)
        compiled = FastTimingSimulator(isa_design.netlist, isa_design.annotation,
                                       engine="compiled")
        reference = FastTimingSimulator(isa_design.netlist, isa_design.annotation,
                                        engine="reference")
        got = compiled.run_trace_multi(operands, clock_plan.periods)
        want = reference.run_trace_multi(operands, clock_plan.periods)
        for clk in clock_plan.periods:
            assert got[clk].cycle_error_rate() == want[clk].cycle_error_rate()
            assert np.array_equal(got[clk].bit_error_rate(), want[clk].bit_error_rate())

    def test_variation_small_design_still_exact(self, clock_plan):
        """Per-instance delay variation keeps engines equivalent when it compiles."""
        design = synthesize(exact_adder_netlist(8, "ripple"),
                            SynthesisOptions(variation_sigma=0.08, variation_seed=5))
        self._assert_engines_agree(design, _random_operands(8, 200, 47),
                                   list(clock_plan.periods))

    def test_variation_prefix_adder_still_exact(self, clock_plan):
        """Continuous per-instance delays also compile (deduped rows) and agree."""
        design = synthesize(exact_adder_netlist(32, "kogge-stone"),
                            SynthesisOptions(variation_sigma=0.2, variation_seed=7))
        critical = design.critical_path_delay
        self._assert_engines_agree(design, _random_operands(32, 200, 61),
                                   list(clock_plan.periods) + [critical * 0.9])

    def test_row_limit_falls_back(self, monkeypatch):
        """When the threshold-row budget is exceeded, auto mode goes dense."""
        design = synthesize(exact_adder_netlist(16, "kogge-stone"))
        from repro.exceptions import CompilationError
        with pytest.raises(CompilationError):
            PackedTimingProgram(design.netlist.compiled(), design.annotation,
                                row_limit=64)
        monkeypatch.setattr(PackedTimingProgram, "DEFAULT_ROWS_PER_GATE", 0)
        auto = FastTimingSimulator(design.netlist, design.annotation, engine="auto")
        assert auto.engine == "reference"
        with pytest.raises(SimulationError):
            FastTimingSimulator(design.netlist, design.annotation, engine="compiled")
        # and the dense fallback still simulates correctly
        trace = auto.run_trace(_random_operands(16, 50, 67),
                               design.critical_path_delay * 1.05)
        assert trace.cycle_error_rate() == 0.0

    def test_plan_matches_full_propagation(self, exact_design):
        """A clock-specialised plan computes the same rows as the full run."""
        netlist = exact_design.netlist
        program = netlist.compiled()
        timing = PackedTimingProgram(program, exact_design.annotation)
        operands = _random_operands(16, 130, 53)
        bits = expand_operand_traces(netlist, operands)
        old, new = program.evaluate_transitions(
            {net: trace for net, trace in bits.items()}, 129)
        changed = old ^ new
        clk = exact_design.critical_path_delay * 0.6
        rows = timing.late_rows(netlist.buses["S"], clk)
        full = timing.run(changed)
        planned = timing.run(changed, plan=timing.plan_for(rows))
        assert np.array_equal(full[rows], planned[rows])

    def test_clock_specialised_program_matches_full(self, exact_design, clock_plan):
        """A clock-specialised compilation answers its clocks identically."""
        netlist = exact_design.netlist
        program = netlist.compiled()
        clocks = list(clock_plan.periods) + [exact_design.critical_path_delay * 0.7]
        full = PackedTimingProgram(program, exact_design.annotation)
        specialised = PackedTimingProgram(program, exact_design.annotation,
                                          clock_periods=clocks)
        assert specialised.num_rows <= full.num_rows
        bits = expand_operand_traces(netlist, _random_operands(16, 130, 59))
        old, new = program.evaluate_transitions(bits, 129)
        changed = old ^ new
        full_masks = full.run(changed)
        spec_masks = specialised.run(changed)
        nets = netlist.buses["S"]
        for clk in clocks:
            assert np.array_equal(full_masks[full.late_rows(nets, clk)],
                                  spec_masks[specialised.late_rows(nets, clk)])

    def test_clock_specialised_program_rejects_other_clocks(self, exact_design):
        program = exact_design.netlist.compiled()
        critical = exact_design.critical_path_delay
        specialised = PackedTimingProgram(program, exact_design.annotation,
                                          clock_periods=[critical * 0.9])
        with pytest.raises(SimulationError):
            specialised.late_rows(exact_design.netlist.buses["S"], critical * 0.4)


class TestMultiTraceKernels:
    """Stacked multi-trace execution vs per-trace execution."""

    def test_run_packed_many_matches_per_trace(self, exact_design, rng):
        netlist = exact_design.netlist
        program = netlist.compiled()
        traces = [_random_operands(16, length, 71 + length)
                  for length in (100, 64, 130)]
        longest = max(130, 100, 64)
        words = packed_word_count(longest)
        stacked = {}
        per_trace_packed = []
        for net in netlist.inputs:
            rows = np.zeros((len(traces), words), dtype=np.uint64)
            stacked[net] = rows
        for index, operands in enumerate(traces):
            bits = expand_operand_traces(netlist, operands)
            packed = {net: pack_bits(values) for net, values in bits.items()}
            per_trace_packed.append(packed)
            for net, row in packed.items():
                stacked[net][index, :row.shape[0]] = row
        values = program.run_packed_many(stacked, len(traces), words)
        for index, packed in enumerate(per_trace_packed):
            alone = program.run_packed(packed,
                                       next(iter(packed.values())).shape[0])
            assert np.array_equal(values[:, index, :alone.shape[1]], alone)

    @pytest.mark.parametrize("lengths", [(100, 64, 130), (65, 65, 65), (2, 129, 63)])
    def test_evaluate_transitions_many_matches_single(self, exact_design, lengths):
        netlist = exact_design.netlist
        program = netlist.compiled()
        traces = [expand_operand_traces(netlist, _random_operands(16, length, 83 + length))
                  for length in lengths]
        longest = max(lengths)
        stacked = {}
        for net in netlist.inputs:
            rows = np.zeros((len(traces), longest), dtype=np.uint8)
            for index, bits in enumerate(traces):
                rows[index, :lengths[index]] = bits[net]
            stacked[net] = rows
        old_many, new_many = program.evaluate_transitions_many(stacked, longest - 1)
        for index, bits in enumerate(traces):
            transitions = lengths[index] - 1
            if transitions < 1:
                continue
            old, new = program.evaluate_transitions(bits, transitions)
            words = packed_word_count(transitions)
            # whole words match exactly; the last (ragged) word matches on
            # the bits that name real transitions
            if words > 1:
                assert np.array_equal(old_many[:, index, :words - 1],
                                      old[:, :words - 1])
                assert np.array_equal(new_many[:, index, :words - 1],
                                      new[:, :words - 1])
            tail = transitions - (words - 1) * 64
            mask = np.uint64((1 << tail) - 1) if tail < 64 else ~np.uint64(0)
            assert np.array_equal(old_many[:, index, words - 1] & mask,
                                  old[:, words - 1] & mask)
            assert np.array_equal(new_many[:, index, words - 1] & mask,
                                  new[:, words - 1] & mask)

    def test_run_many_matches_run(self, exact_design):
        netlist = exact_design.netlist
        program = netlist.compiled()
        timing = PackedTimingProgram(program, exact_design.annotation)
        traces = [expand_operand_traces(netlist, _random_operands(16, 130, seed))
                  for seed in (91, 92, 93)]
        diffs = []
        for bits in traces:
            old, new = program.evaluate_transitions(bits, 129)
            diffs.append(old ^ new)
        stacked = np.stack(diffs, axis=1)  # (num_nets, traces, words)
        masks_many = timing.run_many(stacked)
        for index, changed in enumerate(diffs):
            assert np.array_equal(masks_many[:, index], timing.run(changed))

    def test_run_many_rejects_flat_input(self, exact_design):
        program = exact_design.netlist.compiled()
        timing = PackedTimingProgram(program, exact_design.annotation)
        with pytest.raises(SimulationError):
            timing.run_many(np.zeros((program.num_nets, 2), dtype=np.uint64))


class TestOperandExpansion:
    def test_unknown_operand(self, exact_design):
        with pytest.raises(SimulationError):
            expand_operand_traces(exact_design.netlist,
                                  {"Z": np.array([1, 2], dtype=np.uint64)})

    def test_length_mismatch(self, exact_design):
        with pytest.raises(SimulationError):
            expand_operand_traces(exact_design.netlist,
                                  {"A": np.array([1, 2], dtype=np.uint64),
                                   "B": np.array([1], dtype=np.uint64)})

    def test_missing_inputs(self, exact_design):
        with pytest.raises(SimulationError):
            expand_operand_traces(exact_design.netlist,
                                  {"A": np.array([1, 2], dtype=np.uint64)})

    def test_expansion_drives_all_inputs(self, exact_design):
        operands = _random_operands(16, 10, 59)
        bits = expand_operand_traces(exact_design.netlist, operands)
        assert set(exact_design.netlist.inputs) <= set(bits)
        for trace in bits.values():
            assert trace.shape == (10,)


class TestWaveformBisect:
    def test_value_at_semantics(self):
        waveform = Waveform(changes=[(-np.inf, 0), (1.0, 1), (2.0, 0), (2.0, 1)])
        assert waveform.value_at(0.5) == 0
        assert waveform.value_at(1.0) == 1      # change at exactly t is visible
        assert waveform.value_at(1.5) == 1
        assert waveform.value_at(2.0) == 1      # last change at equal time wins
        assert waveform.value_at(99.0) == 1

    def test_event_sim_glitch_sampling_unchanged(self):
        builder = NetlistBuilder("glitch")
        a = builder.input_bit("a")
        delayed = builder.gate("BUF", builder.gate("BUF", a))
        builder.output_bus("S", [builder.xor2(a, delayed)])
        netlist = builder.build()
        annotation = DelayAnnotation.nominal(netlist, default_library())
        from repro.timing.event_sim import EventDrivenSimulator
        simulator = EventDrivenSimulator(netlist, annotation)
        waveforms = simulator.simulate_transition({"a": 0}, {"a": 1})
        output = netlist.outputs[0]
        times = [time for time, _ in waveforms[output].changes if np.isfinite(time)]
        # sampling inside the glitch window sees the pulse, after it the settled 0
        assert waveforms[output].value_at(times[0]) == 1
        assert waveforms[output].final_value == 0


class TestCacheInvalidation:
    def test_growing_a_netlist_recompiles(self):
        netlist = Netlist("grow")
        a = netlist.add_input("a")
        netlist.add_gate("g1", "INV", [a], "n1")
        netlist.register_bus("Y", ["n1"])
        first = netlist.compute_words({"a": np.array([0, 1, 1])}, output_bus="Y")
        assert first.tolist() == [1, 0, 0]
        netlist.add_gate("g2", "INV", ["n1"], "n2")
        netlist.register_bus("Z", ["n2"])
        second = netlist.compute_words({"a": np.array([0, 1, 1])}, output_bus="Z")
        assert second.tolist() == [0, 1, 1]
