"""Unit tests of the observability substrate (:mod:`repro.obs`).

Span nesting and attribute folding, thread-safety and re-entrancy of
the phase compatibility layer, the metrics registry, worker-spill
records and their driver-side merge, run-manifest round-trips and the
``repro-stats`` summaries — all without touching the synthesis or
simulation pipeline, so these tests are fast and dependency-free.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    MANIFEST_SCHEMA,
    MetricsRegistry,
    Tracer,
    append_manifest,
    drain_spill_dir,
    load_manifests,
    metric_count,
    metric_observe,
    metrics_run,
    record_counter_deltas,
    resolve_telemetry_dir,
    span,
    spilled_call,
    telemetry_active,
    telemetry_run,
    trace_run,
)
from repro.obs.manifest import TELEMETRY_ENV
from repro.obs.stats_cli import main as stats_main
from repro.utils.phases import PHASES, PhaseTimes, collect_phases, phase


@pytest.fixture(autouse=True)
def _isolated_telemetry_env(monkeypatch):
    """Shield these tests from a suite-wide $REPRO_TELEMETRY_DIR (CI leg)."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)


class TestSpans:
    def test_spans_nest_into_paths(self):
        with trace_run() as tracer:
            with span("synthesize"):
                with span("synth.optimize"):
                    pass
            with span("simulate"):
                pass
            with span("simulate"):
                pass
        assert set(tracer.spans) == {"synthesize", "synthesize/synth.optimize",
                                     "simulate"}
        assert tracer.spans["simulate"].calls == 2
        assert tracer.spans["synthesize/synth.optimize"].name == "synth.optimize"
        for stats in tracer.spans.values():
            assert stats.wall_s >= 0.0
            assert stats.cpu_s >= 0.0

    def test_numeric_attrs_sum_others_keep_last(self):
        with trace_run() as tracer:
            with span("simulate", transitions=100, design="a"):
                pass
            with span("simulate", transitions=np.int64(28), design="b"):
                pass
        attrs = tracer.spans["simulate"].attrs
        assert attrs["transitions"] == 128
        assert isinstance(attrs["transitions"], int)  # numpy scalars cleaned
        assert attrs["design"] == "b"

    def test_span_is_noop_without_tracer(self):
        with span("simulate"):
            pass  # must not raise, and nothing to observe

    def test_tracers_stack(self):
        with trace_run() as outer:
            with span("score"):
                pass
            with trace_run() as inner:
                with span("simulate"):
                    pass
        assert set(outer.spans) == {"score", "simulate"}
        assert set(inner.spans) == {"simulate"}

    def test_phase_totals_and_attribution(self):
        tracer = Tracer()
        tracer.merge_span("synthesize", "synthesize", 1.0, 0.9, 2, {})
        tracer.merge_span("synthesize/synth.optimize", "synth.optimize",
                          0.6, 0.5, 2, {})
        tracer.merge_span("schedule.wait", "schedule.wait", 3.0, 0.0, 1, {})
        totals = tracer.phase_totals()
        assert totals["synthesize"]["calls"] == 2
        assert totals["synth.optimize"]["wall_s"] == pytest.approx(0.6)
        # Dotted names (sub-phases, scheduling wait) are not attributed.
        assert tracer.attributed_wall_s() == pytest.approx(1.0)


class TestPhasesCompat:
    def test_collect_phases_records_names_and_calls(self):
        with collect_phases() as phases:
            with phase("synthesize"):
                with phase("synth.optimize"):
                    pass
            with phase("simulate"):
                pass
        assert phases.calls == {"synthesize": 1, "synth.optimize": 1,
                                "simulate": 1}
        assert "attributed" in phases.describe()

    def test_total_excludes_dotted_subphases(self):
        times = PhaseTimes()
        times.add("synthesize", 1.0)
        times.add("synth.optimize", 0.4)
        times.add("schedule.wait", 5.0)
        assert times.total() == pytest.approx(1.0)
        assert "schedule.wait" in PHASES

    def test_nested_collectors_stack(self):
        with collect_phases() as outer:
            with phase("score"):
                pass
            with collect_phases() as inner:
                with phase("simulate"):
                    pass
        assert set(outer.seconds) == {"score", "simulate"}
        assert set(inner.seconds) == {"simulate"}

    def test_collectors_are_thread_local(self):
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                with collect_phases() as phases:
                    barrier.wait(timeout=5)
                    with phase(name):
                        barrier.wait(timeout=5)
                    assert set(phases.seconds) == {name}, phases.seconds
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("synthesize", "simulate")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_collector_exposes_tracer(self):
        with collect_phases() as phases:
            with phase("synthesize"):
                with phase("synth.sta"):
                    pass
        assert "synthesize/synth.sta" in phases.tracer.spans


class TestMetrics:
    def test_counters_gauges_histograms(self):
        with metrics_run() as registry:
            metric_count("jobs.simulated", 3)
            metric_count("jobs.simulated")
            metric_observe("plan.group_size", 4)
            metric_observe("plan.group_size", 8)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["jobs.simulated"] == 4
        histogram = snapshot["histograms"]["plan.group_size"]
        assert histogram == {"count": 2, "total": 12.0, "min": 4.0,
                             "max": 8.0, "mean": 6.0}

    def test_metrics_are_noops_without_registry(self):
        metric_count("jobs.simulated")  # must not raise

    def test_merge_snapshot(self):
        first = MetricsRegistry()
        first.count("cache.hits", 2)
        first.observe("plan.group_size", 4)
        second = MetricsRegistry()
        second.count("cache.hits", 3)
        second.observe("plan.group_size", 10)
        second.merge_snapshot(first.snapshot())
        snapshot = second.snapshot()
        assert snapshot["counters"]["cache.hits"] == 5
        assert snapshot["histograms"]["plan.group_size"]["count"] == 2
        assert snapshot["histograms"]["plan.group_size"]["max"] == 10.0

    def test_record_counter_deltas_skips_zeroes(self):
        with metrics_run() as registry:
            record_counter_deltas("cache", {"hits": 2, "misses": 0})
        assert registry.snapshot()["counters"] == {"cache.hits": 2}


class TestSpill:
    def test_spilled_call_writes_record_and_drain_merges(self, tmp_path):
        def task(value):
            with phase("simulate"):
                pass
            metric_count("jobs.simulated")
            return value * 2

        with trace_run() as tracer, metrics_run() as registry:
            assert telemetry_active()
            result = spilled_call(str(tmp_path), task, 21)
            assert result == 42
            offsets = {}
            assert drain_spill_dir(str(tmp_path), offsets) == 1
            # A second drain consumes nothing new (offsets advanced).
            assert drain_spill_dir(str(tmp_path), offsets) == 0
        assert tracer.spans["simulate"].calls == 1
        assert registry.snapshot()["counters"]["jobs.simulated"] == 1
        assert len(tracer.workers) == 1
        worker = next(iter(tracer.workers.values()))
        assert worker["tasks"] == 1
        assert worker["busy_s"] >= 0.0

    def test_spilled_call_isolates_worker_from_ambient_tracers(self, tmp_path):
        # The task runs in an empty context: the ambient tracer must not
        # observe the task's spans directly (only through the drain).
        def task():
            with phase("simulate"):
                pass

        with trace_run() as tracer:
            spilled_call(str(tmp_path), task)
        assert "simulate" not in tracer.spans

    def test_drain_ignores_torn_trailing_line(self, tmp_path):
        path = tmp_path / "worker-123.jsonl"
        whole = json.dumps({"pid": 123, "busy_s": 0.5, "tasks": 1,
                            "spans": {}, "metrics": {}})
        path.write_text(whole + "\n" + '{"pid": 123, "busy')
        with trace_run() as tracer:
            assert drain_spill_dir(str(tmp_path), {}) == 1
        assert tracer.workers["123"]["busy_s"] == pytest.approx(0.5)

    def test_telemetry_active_reflects_context(self):
        assert not telemetry_active()
        with trace_run():
            assert telemetry_active()
        assert not telemetry_active()


class TestManifests:
    def test_manifest_roundtrip_schema(self, tmp_path):
        with telemetry_run(tmp_path, command="unit-test",
                           config={"width": 16}) as handle:
            with phase("simulate"):
                pass
            metric_count("jobs.simulated", 2)
            handle.annotate(note="hello")
        assert handle.enabled
        assert handle.manifest_path is not None
        [manifest] = load_manifests(tmp_path)
        assert manifest == handle.manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["command"] == "unit-test"
        assert manifest["config"] == {"width": 16}
        assert manifest["metrics"]["counters"]["jobs.simulated"] == 2
        assert manifest["phases"]["simulate"]["calls"] == 1
        assert manifest["note"] == "hello"
        assert manifest["elapsed_s"] > 0
        assert 0.0 <= manifest["attributed_fraction"]
        assert manifest["accounted_s"] >= manifest["attributed_s"]
        for key in ("run_id", "timestamp", "library_version", "host",
                    "spans", "workers"):
            assert key in manifest

    def test_nested_sessions_write_one_manifest(self, tmp_path):
        with telemetry_run(tmp_path, command="outer"):
            with telemetry_run(tmp_path, command="inner") as inner:
                with phase("simulate"):
                    pass
            assert not inner.enabled
        manifests = load_manifests(tmp_path)
        assert [m["command"] for m in manifests] == ["outer"]
        # The inner block's spans were observed by the outer session.
        assert manifests[0]["phases"]["simulate"]["calls"] == 1

    def test_disabled_without_directory(self):
        with telemetry_run(None, command="nothing") as handle:
            pass
        assert not handle.enabled
        assert handle.manifest is None

    def test_inline_builds_manifest_without_directory(self):
        with telemetry_run(None, command="inline", inline=True) as handle:
            metric_count("jobs.simulated")
        assert handle.manifest is not None
        assert handle.manifest_path is None
        assert handle.manifest["metrics"]["counters"]["jobs.simulated"] == 1

    def test_env_var_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        assert resolve_telemetry_dir(None) == str(tmp_path)
        with telemetry_run(resolve_telemetry_dir(None), command="env-run"):
            pass
        assert [m["command"] for m in load_manifests(tmp_path)] == ["env-run"]

    def test_load_manifests_tolerates_garbage(self, tmp_path):
        append_manifest(tmp_path, {"schema": MANIFEST_SCHEMA, "command": "ok"})
        with open(tmp_path / "manifests.jsonl", "a") as handle:
            handle.write("not json\n")
        assert [m["command"] for m in load_manifests(tmp_path)] == ["ok"]
        assert load_manifests(tmp_path / "missing") == []


class TestStatsCli:
    def _write_runs(self, directory):
        with telemetry_run(directory, command="run_sweep"):
            with phase("simulate"):
                pass
            metric_count("cache.hits", 3)
            metric_count("cache.misses", 1)
        with telemetry_run(directory, command="run_sweep"):
            with phase("synthesize"):
                pass
            metric_count("cache.hits", 4)

    def test_stats_over_multiple_runs(self, tmp_path, capsys):
        self._write_runs(tmp_path)
        assert stats_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "Slowest phases" in out
        assert "hit rate" in out

    def test_stats_json_payload(self, tmp_path, capsys):
        self._write_runs(tmp_path)
        assert stats_main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry"]["runs"] == 2
        trend = payload["telemetry"]["cache_trend"]
        assert [row["hits"] for row in trend] == [3, 4]
        assert trend[0]["hit_rate"] == pytest.approx(0.75)

    def test_stats_requires_something_to_summarise(self, capsys):
        with pytest.raises(SystemExit):
            stats_main([])
