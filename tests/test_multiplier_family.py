"""Tests of the approximate array multiplier family (repro.families.multiplier).

The contract under test: the behavioural model and the netlist
generator are bit-identical on random vectors across the *entire* legal
width-8 space (the pipeline's netlist-vs-golden cross-check depends on
it); configuration legality is enforced; a multiplier sweep through the
job pipeline is bit-identical across serial, multiprocess and cached
backends with warm re-runs simulating zero jobs; and the Pareto
frontier of a multiplier sweep anchors on the exact baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.explore.pareto import aggregate_points, pareto_frontier, rank_frontier
from repro.explore.sweep import SweepSpec, run_sweep
from repro.families import get_family
from repro.families.multiplier import (
    ApproximateArrayMultiplier,
    ExactMultiplier,
    MultiplierConfig,
    MultiplierEntry,
    MultiplierSpace,
    exact_multiplier_entry,
    exact_multiplier_netlist,
    legal_segment_sizes,
    multiplier_entry,
    multiplier_netlist,
    multiplier_surrogate_features,
)
from repro.runtime import CachingBackend, MultiprocessBackend
from repro.synth.flow import SynthesisOptions, synthesize
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import WorkloadSpec


def operand_vectors(width=8, length=128, seed=29):
    rng = np.random.default_rng(seed)
    high = 1 << width
    return (rng.integers(0, high, size=length, dtype=np.uint64),
            rng.integers(0, high, size=length, dtype=np.uint64))


def small_mul_spec(width=8, max_designs=4, length=96,
                   cpr_levels=(0.0, 0.15)) -> SweepSpec:
    """A quick multiplier sweep: a few designs plus the exact baseline."""
    family = get_family("multiplier")
    entries = family.design_space(width).entries(max_designs=max_designs)
    plan = ClockPlan(safe_period=family.safe_period(width), cpr_levels=cpr_levels)
    workloads = (WorkloadSpec("uniform", length, width=width, seed=17),)
    return SweepSpec(entries=tuple(entries), clock_plan=plan,
                     workloads=workloads, width=width)


class TestConfigLegality:
    def test_legal_segment_sizes(self):
        assert legal_segment_sizes(8) == (0, 2, 4, 8)
        assert legal_segment_sizes(6) == (0, 2, 3, 4, 6)
        assert legal_segment_sizes(2) == (0, 2)

    def test_quadruple_roundtrip_and_names(self):
        config = MultiplierConfig.from_quadruple((4, 2, 1, 3), width=8)
        assert config.quadruple == (4, 2, 1, 3)
        assert config.name == "mul(4,2,1,3)"
        assert config.label == "mul8_4_2_1_3"
        assert not config.is_provably_exact
        assert MultiplierConfig(width=8).is_provably_exact

    @pytest.mark.parametrize("quadruple", [
        (9, 0, 0, 0),    # truncation beyond the width
        (0, 3, 0, 0),    # 3 does not divide 16
        (0, 1, 0, 0),    # 1-bit segments drop every carry
        (1, 0, 1, 0),    # correction needs truncation >= 2
        (0, 0, 1, 0),    # correction needs truncation >= 2
        (0, 0, 2, 0),    # correction is a flag
        (0, 0, 0, 8),    # row_skip must leave one row
    ])
    def test_illegal_quadruples_raise(self, quadruple):
        with pytest.raises(ConfigurationError):
            MultiplierConfig.from_quadruple(quadruple, width=8)

    def test_width_cap(self):
        with pytest.raises(ConfigurationError, match="31"):
            MultiplierConfig(width=32)
        with pytest.raises(ConfigurationError, match="31"):
            ExactMultiplier(32)

    def test_operand_range_checked(self):
        a, b = operand_vectors(width=8)
        with pytest.raises(ConfigurationError, match="range"):
            ExactMultiplier(4).multiply_many(a, b)

    def test_entry_structure(self):
        entry = multiplier_entry((2, 0, 0, 0), width=8)
        assert entry.family == "multiplier"
        assert not entry.is_exact
        assert entry.name == "mul(2,0,0,0)"
        exact = exact_multiplier_entry(8)
        assert exact.is_exact and exact.config is None and exact.name == "exact"


class TestSpaceEnumeration:
    def test_width8_space_size(self):
        # t in 0..8 x 4 segments x r in 0..4, doubled for c=1 with
        # t in 2..8, minus the excluded exact (0,0,0,0).
        assert MultiplierSpace(width=8).size == 9 * 4 * 5 + 7 * 4 * 5 - 1

    def test_sorted_lazy_and_deterministic(self):
        space = MultiplierSpace(width=8)
        quadruples = space.quadruples()
        assert quadruples == sorted(quadruples)
        assert list(space.iter_quadruples()) == quadruples
        assert (0, 0, 0, 0) not in quadruples
        assert all(MultiplierConfig.from_quadruple(q, width=8) is not None
                   for q in quadruples[:20])

    def test_select_and_entries(self):
        space = MultiplierSpace(width=8)
        subset = space.select(max_designs=16)
        assert len(subset) == 16 and len(set(subset)) == 16
        assert subset == space.select(max_designs=16)
        entries = space.entries(max_designs=8)
        assert len(entries) == 9 and entries[-1].is_exact

    def test_constraints(self):
        space = MultiplierSpace(width=8, max_truncation=2, max_row_skip=1)
        assert all(q[0] <= 2 and q[3] <= 1 for q in space.quadruples())
        assert "max_truncation=2" in space.describe()

    def test_surrogate_features_shape_and_guarantee(self):
        space = MultiplierSpace(width=8)
        quadruples = np.array(space.quadruples(), dtype=np.int64)
        features = multiplier_surrogate_features(quadruples, 8)
        assert features.shape[0] == quadruples.shape[0]
        family = get_family("multiplier")
        column = family.surrogate_feature_names.index("provably_exact")
        # The exact configuration is excluded from the space, so no
        # enumerated candidate carries the guarantee.
        assert not features[:, column].any()


class TestBehavioralNetlistEquivalence:
    def test_exact_netlist_matches_reference(self):
        a, b = operand_vectors()
        netlist = exact_multiplier_netlist(8)
        words = netlist.compute_words(
            {"A": a, "B": b, "cin": np.zeros_like(a)}, output_bus="S")
        assert np.array_equal(words, a * b)

    def test_full_legal_space_equivalence(self):
        """Behavioural vs netlist, every width-8 quadruple, random vectors."""
        a, b = operand_vectors(length=96)
        cin0 = np.zeros_like(a)
        for quadruple in MultiplierSpace(width=8).iter_quadruples():
            config = MultiplierConfig.from_quadruple(quadruple, width=8)
            gold = ApproximateArrayMultiplier(config).multiply_many(a, b)
            words = multiplier_netlist(config).compute_words(
                {"A": a, "B": b, "cin": cin0}, output_bus="S")
            assert np.array_equal(gold, words), f"mismatch at {quadruple}"

    def test_carry_in_is_never_truncated(self):
        a, b = operand_vectors(length=64)
        config = MultiplierConfig.from_quadruple((8, 2, 1, 4), width=8)
        gold = ApproximateArrayMultiplier(config).multiply_many(a, b, cin=1)
        words = multiplier_netlist(config).compute_words(
            {"A": a, "B": b, "cin": np.ones_like(a)}, output_bus="S")
        assert np.array_equal(gold, words)
        base = ApproximateArrayMultiplier(config).multiply_many(a, b, cin=0)
        assert np.array_equal(gold, base + 1)

    def test_equivalence_survives_synthesis(self):
        a, b = operand_vectors(length=64)
        options = SynthesisOptions()
        family = get_family("multiplier")
        for quadruple in [(0, 0, 0, 0), (4, 4, 1, 0), (8, 2, 1, 4)]:
            entry = (exact_multiplier_entry(8) if quadruple == (0, 0, 0, 0)
                     else multiplier_entry(quadruple, width=8))
            design = synthesize(family.design_spec(entry, 8, options), options)
            words = design.netlist.compute_words(
                {"A": a, "B": b, "cin": np.zeros_like(a)}, output_bus="S")
            gold, _ = family.golden_words(entry, 8, a, b)
            assert np.array_equal(words, gold), f"mismatch at {quadruple}"

    def test_family_exact_and_golden_words(self):
        a, b = operand_vectors(length=64)
        family = get_family("multiplier")
        diamond = family.exact_words(8, a, b)
        assert np.array_equal(diamond, a * b)
        gold, stats = family.golden_words(exact_multiplier_entry(8), 8, a, b,
                                          diamond=diamond)
        assert stats is None
        assert np.array_equal(gold, diamond) and gold is not diamond
        # collect_stats is a no-op for the multiplier (no structural
        # fault model), never an error.
        _, stats = family.golden_words(multiplier_entry((2, 0, 0, 0), width=8),
                                       8, a, b, collect_stats=True)
        assert stats is None

    def test_width_mismatch_raises(self):
        family = get_family("multiplier")
        with pytest.raises(ConfigurationError, match="8-bit"):
            family.design_spec(multiplier_entry((2, 0, 0, 0), width=8), 16,
                               SynthesisOptions())


class TestMultiplierSweep:
    def test_serial_multiprocess_cached_bit_identity(self, tmp_path):
        spec = small_mul_spec(max_designs=3)
        serial = run_sweep(spec, backend="serial")
        pool = MultiprocessBackend(workers=2)
        try:
            multiprocess = run_sweep(spec, backend=pool)
        finally:
            pool.close()
        cold = run_sweep(spec, backend="serial", cache_dir=str(tmp_path))
        warm = run_sweep(spec, backend="serial", cache_dir=str(tmp_path))
        assert serial.points == multiprocess.points == cold.points == warm.points

    def test_warm_cached_sweep_simulates_zero_jobs(self, tmp_path):
        from repro.runtime import SerialBackend
        spec = small_mul_spec(max_designs=2)
        backend = CachingBackend(SerialBackend(), tmp_path)
        try:
            run_sweep(spec, backend=backend)
            baseline = backend.stats.snapshot()
            run_sweep(spec, backend=backend)
            warm_stats = backend.stats.since(baseline)
        finally:
            backend.close()
        assert warm_stats.misses == 0
        assert warm_stats.hits == spec.job_count

    def test_sweep_points_use_the_product_width(self):
        spec = small_mul_spec(max_designs=2, length=64)
        result = run_sweep(spec, backend="serial")
        assert result.points, "sweep must score points"
        for point in result.points:
            if point.is_exact:
                assert point.provably_exact
        # Scoring used result_width = 2 * width: the error statistics
        # normalise by the 16-bit product range, so no relative error
        # can exceed the full-scale ratio of a 16-bit bus.
        assert all(point.stats.rms_relative_error <= 1.0
                   for point in result.points)

    def test_pareto_frontier_anchored_by_exact_baseline(self):
        spec = small_mul_spec(max_designs=6, length=96)
        result = run_sweep(spec, backend="serial")
        ranked = rank_frontier(pareto_frontier(aggregate_points(result.points)))
        assert ranked, "frontier must not be empty"
        exact_points = [point for point in ranked if point.is_exact]
        assert exact_points, "the exact multiplier must sit on the frontier"
        assert all(point.provably_exact for point in exact_points)
        # The exact baseline at the safe period is genuinely error-free:
        # the family's safe period clears the exact critical path.
        safe_points = [point for point in result.points
                       if point.is_exact and point.cpr == 0.0]
        assert safe_points
        assert all(point.stats.error_rate == 0.0 for point in safe_points)


class TestMultiplierEntryPickling:
    def test_entries_survive_pickling(self):
        # Multiprocess backends ship jobs (and their entries) to workers.
        import pickle
        for entry in (exact_multiplier_entry(8),
                      multiplier_entry((4, 2, 1, 0), width=8)):
            clone = pickle.loads(pickle.dumps(entry))
            assert clone == entry
            assert clone.family == "multiplier"
