"""Tests for feature extraction, datasets, metrics and the bit-level timing model."""

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.exceptions import AnalysisError, ModelError
from repro.ml.dataset import build_bit_datasets, dataset_summary
from repro.ml.features import build_feature_matrix, feature_count, feature_names
from repro.ml.metrics import LOG_FLOOR, abper, avpe, classification_summary, floored
from repro.ml.model import BitLevelTimingModel, TimingModelOptions
from repro.timing.errors import TimingErrorTrace
from repro.timing.fast_sim import FastTimingSimulator
from repro.workloads.generators import uniform_workload
from repro.workloads.traces import OperandTrace


class TestFeatures:
    def test_shapes_and_names(self):
        trace = uniform_workload(50, width=16, seed=0)
        gold = trace.a + trace.b
        features = build_feature_matrix(trace, gold, bit=3)
        assert features.shape == (49, feature_count(16))
        assert len(feature_names(16)) == feature_count(16)

    def test_output_bit_features_are_last_two_columns(self):
        trace = OperandTrace(np.array([1, 2, 3], dtype=np.uint64),
                             np.array([0, 0, 0], dtype=np.uint64), width=4)
        gold = trace.a + trace.b  # 1, 2, 3
        features = build_feature_matrix(trace, gold, bit=0)
        # bit 0 of gold: 1, 0, 1 -> previous = [1, 0], current = [0, 1]
        assert features[:, -2].tolist() == [1, 0]
        assert features[:, -1].tolist() == [0, 1]

    def test_length_mismatch_rejected(self):
        trace = uniform_workload(10, width=8, seed=0)
        with pytest.raises(ModelError):
            build_feature_matrix(trace, np.zeros(5, dtype=np.uint64), bit=0)

    def test_single_vector_trace_rejected(self):
        trace = OperandTrace(np.array([1], dtype=np.uint64), np.array([2], dtype=np.uint64),
                             width=8)
        with pytest.raises(ModelError):
            build_feature_matrix(trace, np.array([3], dtype=np.uint64), bit=0)


class TestDatasets:
    def _setup(self):
        trace = uniform_workload(60, width=8, seed=1)
        gold = trace.a + trace.b
        # synthetic timing trace: bit 2 flips whenever operand bit 0 of A is set
        settled = gold[1:]
        flips = ((trace.a[1:] & np.uint64(1)) << np.uint64(2))
        sampled = settled ^ flips
        timing = TimingErrorTrace(clock_period=1e-10, sampled_words=sampled,
                                  settled_words=settled, output_width=9)
        return trace, gold, timing

    def test_one_dataset_per_bit(self):
        trace, gold, timing = self._setup()
        datasets = build_bit_datasets(trace, gold, timing)
        assert len(datasets) == 9
        assert all(dataset.samples == trace.transitions for dataset in datasets)

    def test_error_rates_match_injection(self):
        trace, gold, timing = self._setup()
        datasets = build_bit_datasets(trace, gold, timing)
        summary = dataset_summary(datasets)
        assert summary[2] > 0
        assert summary[5] == 0.0

    def test_transition_count_mismatch_rejected(self):
        trace, gold, timing = self._setup()
        short = uniform_workload(30, width=8, seed=2)
        with pytest.raises(ModelError):
            build_bit_datasets(short, short.a + short.b, timing)


class TestMetrics:
    def test_abper_counts_disagreements(self):
        predicted = np.array([[1, 1], [0, 1]])
        real = np.array([[1, 0], [0, 1]])
        assert abper(predicted, real) == pytest.approx(0.25)

    def test_abper_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            abper(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_avpe_definition(self):
        predicted = np.array([10, 20, 30])
        real = np.array([10, 25, 30])
        assert avpe(predicted, real) == pytest.approx((0 + 5 / 25 + 0) / 3)

    def test_avpe_ignores_zero_real_values(self):
        assert avpe(np.array([1, 5]), np.array([0, 5])) == pytest.approx(0.0)

    def test_avpe_all_zero_rejected(self):
        with pytest.raises(AnalysisError):
            avpe(np.array([1]), np.array([0]))

    def test_floored(self):
        assert floored(0.0) == LOG_FLOOR
        assert floored(0.5) == 0.5

    def test_classification_summary(self):
        predicted = np.array([1, 1, 0, 0])
        real = np.array([1, 0, 1, 0])
        summary = classification_summary(predicted, real)
        assert summary["accuracy"] == pytest.approx(0.5)
        assert summary["precision"] == pytest.approx(0.5)
        assert summary["recall"] == pytest.approx(0.5)
        assert summary["error_rate"] == pytest.approx(0.5)


class TestBitLevelTimingModel:
    @pytest.fixture(scope="class")
    def trained_setup(self, request):
        """Train a model on a 16-bit ISA overclocked with the fast simulator."""
        from repro.synth.flow import synthesize
        config = ISAConfig(width=16, block_size=4, spec_size=0, correction=0, reduction=2)
        design = synthesize(config)
        adder = InexactSpeculativeAdder(config)
        train = uniform_workload(500, width=16, seed=11)
        test = uniform_workload(300, width=16, seed=12)
        simulator = FastTimingSimulator(design.netlist, design.annotation)
        clock = design.critical_path_delay * 0.85
        train_timing = simulator.run_trace(train.as_operands(), clock)
        test_timing = simulator.run_trace(test.as_operands(), clock)
        model = BitLevelTimingModel(design=config.name, clock_period=clock, output_width=17,
                                    options=TimingModelOptions(n_estimators=4, max_depth=6))
        model.fit(train, adder.add_many(train.a, train.b), train_timing)
        return model, adder, test, test_timing

    def test_model_reports_fitted_state(self, trained_setup):
        model, _, _, _ = trained_setup
        assert model.is_fitted
        assert "BitLevelTimingModel" in model.describe()

    def test_prediction_shapes(self, trained_setup):
        model, adder, test, _ = trained_setup
        gold = adder.add_many(test.a, test.b)
        errors = model.predict_error_matrix(test, gold)
        assert errors.shape == (test.transitions, 17)
        classes = model.predict_timing_classes(test, gold)
        assert np.array_equal(classes, 1 - errors)
        silver = model.predict_silver(test, gold)
        assert silver.shape == (test.transitions,)

    def test_model_beats_or_matches_trivial_predictor(self, trained_setup):
        """The trained model's ABPER must not exceed the all-correct baseline's."""
        model, adder, test, test_timing = trained_setup
        gold = adder.add_many(test.a, test.b)
        metrics = model.evaluate(test, gold, test_timing)
        baseline = float(test_timing.error_bits().mean())
        assert metrics["abper"] <= baseline + 0.02
        assert metrics["avpe"] >= 0.0

    def test_unfitted_model_rejected(self):
        model = BitLevelTimingModel(design="x", clock_period=1e-10, output_width=5)
        trace = uniform_workload(10, width=4, seed=0)
        with pytest.raises(ModelError):
            model.predict_error_matrix(trace, trace.a + trace.b)

    def test_output_width_mismatch_rejected(self):
        model = BitLevelTimingModel(design="x", clock_period=1e-10, output_width=5)
        trace = uniform_workload(20, width=4, seed=0)
        gold = trace.a + trace.b
        timing = TimingErrorTrace(clock_period=1e-10, sampled_words=gold[1:],
                                  settled_words=gold[1:], output_width=6)
        with pytest.raises(ModelError):
            model.fit(trace, gold, timing)

    def test_error_free_training_gives_constant_model(self):
        trace = uniform_workload(40, width=8, seed=5)
        gold = trace.a + trace.b
        timing = TimingErrorTrace(clock_period=1e-10, sampled_words=gold[1:],
                                  settled_words=gold[1:], output_width=9)
        model = BitLevelTimingModel(design="clean", clock_period=1e-10, output_width=9)
        model.fit(trace, gold, timing)
        assert model.trained_bits == []
        predictions = model.predict_error_matrix(trace, gold)
        assert predictions.sum() == 0
        assert np.array_equal(model.predict_silver(trace, gold), gold[1:])
