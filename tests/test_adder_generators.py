"""Unit and property tests for the exact-adder netlist generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.synth.adders import (
    ADDER_ARCHITECTURES,
    adder_bits,
    brent_kung_adder,
    carry_lookahead_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.circuit.builder import NetlistBuilder
from repro.circuit.validate import check_netlist

GENERATORS = {
    "ripple": ripple_carry_adder,
    "cla": carry_lookahead_adder,
    "kogge-stone": kogge_stone_adder,
    "brent-kung": brent_kung_adder,
}


def exhaustive_check(netlist, width):
    values = np.arange(2 ** width, dtype=np.uint64)
    a = np.repeat(values, 2 ** width)
    b = np.tile(values, 2 ** width)
    for cin in (0, 1):
        cin_arr = np.full(a.shape, cin, dtype=np.uint64)
        result = netlist.compute_words({"A": a, "B": b, "cin": cin_arr})
        assert np.array_equal(result, a + b + cin)


class TestExhaustiveSmallWidths:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_4bit_exhaustive(self, name):
        exhaustive_check(GENERATORS[name](4), 4)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_5bit_non_power_of_two(self, name):
        exhaustive_check(GENERATORS[name](5), 5)


class TestRandomisedWiderWidths:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_32bit_random(self, name, rng):
        netlist = GENERATORS[name](32)
        a = rng.integers(0, 2**32, 300, dtype=np.uint64)
        b = rng.integers(0, 2**32, 300, dtype=np.uint64)
        cin = rng.integers(0, 2, 300, dtype=np.uint64)
        assert np.array_equal(netlist.compute_words({"A": a, "B": b, "cin": cin}), a + b + cin)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_structurally_valid(self, name):
        report = check_netlist(GENERATORS[name](16))
        assert report.num_outputs == 17

    def test_depth_ordering(self):
        """Prefix adders are shallower than CLA, which is shallower than ripple."""
        ripple = ripple_carry_adder(32).logic_depth()
        cla = carry_lookahead_adder(32).logic_depth()
        kogge = kogge_stone_adder(32).logic_depth()
        assert kogge < cla < ripple

    def test_width_grows_depth(self):
        assert kogge_stone_adder(32).logic_depth() > kogge_stone_adder(8).logic_depth()


class TestAdderBitsDispatcher:
    def test_unknown_architecture(self):
        builder = NetlistBuilder("t")
        a = [builder.input_bit("a0")]
        b = [builder.input_bit("b0")]
        with pytest.raises(ConfigurationError):
            adder_bits(builder, a, b, builder.zero, architecture="magic")

    def test_registry_contains_all_architectures(self):
        assert set(ADDER_ARCHITECTURES) == set(GENERATORS)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_bits_interface_matches_word_interface(self, name, rng):
        builder = NetlistBuilder("bits")
        a_bits = builder.input_bus("A", 8)
        b_bits = builder.input_bus("B", 8)
        cin = builder.input_bit("cin")
        sums, cout = adder_bits(builder, a_bits, b_bits, cin, architecture=name)
        builder.output_bus("S", list(sums) + [cout])
        netlist = builder.build()
        a = rng.integers(0, 256, 64, dtype=np.uint64)
        b = rng.integers(0, 256, 64, dtype=np.uint64)
        assert np.array_equal(
            netlist.compute_words({"A": a, "B": b, "cin": np.zeros(64, dtype=np.uint64)}),
            a + b)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=1))
    def test_kogge_stone_16_matches_arithmetic(self, a, b, cin):
        netlist = kogge_stone_adder(16)
        result = netlist.compute_words({"A": np.array([a], dtype=np.uint64),
                                        "B": np.array([b], dtype=np.uint64),
                                        "cin": np.array([cin], dtype=np.uint64)})
        assert int(result[0]) == a + b + cin

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**12 - 1),
           st.integers(min_value=0, max_value=2**12 - 1))
    def test_brent_kung_12_matches_arithmetic(self, a, b):
        netlist = brent_kung_adder(12)
        result = netlist.compute_words({"A": np.array([a], dtype=np.uint64),
                                        "B": np.array([b], dtype=np.uint64),
                                        "cin": np.array([0], dtype=np.uint64)})
        assert int(result[0]) == a + b
