"""Unit tests for the netlist builder, structural validation and delay annotation."""

import io

import numpy as np
import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.library import default_library
from repro.circuit.netlist import CONST0, CONST1
from repro.circuit.sdf import DelayAnnotation
from repro.circuit.validate import check_netlist
from repro.exceptions import NetlistError, TimingError


class TestBuilderIdioms:
    def test_constants(self):
        builder = NetlistBuilder("t")
        assert builder.zero == CONST0 and builder.one == CONST1
        assert builder.const(0) == CONST0 and builder.const(1) == CONST1
        with pytest.raises(NetlistError):
            builder.const(2)

    def test_full_adder_truth_table(self):
        builder = NetlistBuilder("fa")
        a, b, c = builder.input_bit("a"), builder.input_bit("b"), builder.input_bit("c")
        total, carry = builder.full_adder(a, b, c)
        builder.output_bus("S", [total, carry])
        netlist = builder.build()
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    word = int(netlist.compute_words({"a": np.array([va]), "b": np.array([vb]),
                                                      "c": np.array([vc])})[0])
                    assert word == va + vb + vc

    def test_half_adder(self):
        builder = NetlistBuilder("ha")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        total, carry = builder.half_adder(a, b)
        builder.output_bus("S", [total, carry])
        netlist = builder.build()
        assert int(netlist.compute_words({"a": np.array([1]), "b": np.array([1])})[0]) == 2

    def test_and_or_trees(self):
        builder = NetlistBuilder("trees")
        bits = [builder.input_bit(f"x{i}") for i in range(5)]
        all_of = builder.and_tree(bits)
        any_of = builder.or_tree(bits)
        builder.output_bus("S", [all_of, any_of])
        netlist = builder.build()
        word = int(netlist.compute_words({f"x{i}": np.array([1]) for i in range(5)})[0])
        assert word == 0b11
        word = int(netlist.compute_words({f"x{i}": np.array([0]) for i in range(5)})[0])
        assert word == 0b00

    def test_empty_tree_returns_identity(self):
        builder = NetlistBuilder("t")
        assert builder.and_tree([]) == CONST1
        assert builder.or_tree([]) == CONST0

    def test_incrementer(self):
        builder = NetlistBuilder("inc")
        bits = [builder.input_bit(f"x{i}") for i in range(3)]
        enable = builder.input_bit("en")
        builder.output_bus("S", builder.incrementer(bits, enable))
        netlist = builder.build()
        for value in range(8):
            for en in (0, 1):
                stimulus = {f"x{i}": np.array([(value >> i) & 1]) for i in range(3)}
                stimulus["en"] = np.array([en])
                result = int(netlist.compute_words(stimulus)[0])
                assert result == (value + en) % 8

    def test_decrementer(self):
        builder = NetlistBuilder("dec")
        bits = [builder.input_bit(f"x{i}") for i in range(3)]
        enable = builder.input_bit("en")
        builder.output_bus("S", builder.decrementer(bits, enable))
        netlist = builder.build()
        for value in range(8):
            for en in (0, 1):
                stimulus = {f"x{i}": np.array([(value >> i) & 1]) for i in range(3)}
                stimulus["en"] = np.array([en])
                result = int(netlist.compute_words(stimulus)[0])
                assert result == (value - en) % 8


class TestValidation:
    def test_clean_netlist_passes(self):
        builder = NetlistBuilder("clean")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        builder.output_bus("S", [builder.xor2(a, b)])
        report = check_netlist(builder.build())
        assert report.ok
        assert report.num_gates == 1

    def test_dangling_logic_detected(self):
        builder = NetlistBuilder("dangling")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        builder.and2(a, b)  # never used
        builder.output_bus("S", [builder.xor2(a, b)])
        with pytest.raises(NetlistError):
            check_netlist(builder.build())
        report = check_netlist(builder.build(), strict=False)
        assert not report.ok

    def test_unused_input_warning(self):
        builder = NetlistBuilder("unused")
        a = builder.input_bit("a")
        builder.input_bit("b")
        builder.output_bus("S", [builder.inv(a)])
        report = check_netlist(builder.build(), strict=False)
        assert any("never read" in warning for warning in report.warnings)
        assert check_netlist(builder.build(), allow_unused_inputs=True).ok


class TestDelayAnnotation:
    def _netlist(self):
        builder = NetlistBuilder("annot")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        builder.output_bus("S", [builder.xor2(a, b), builder.and2(a, b)])
        return builder.build()

    def test_nominal_annotation(self):
        netlist = self._netlist()
        annotation = DelayAnnotation.nominal(netlist, default_library())
        assert len(annotation) == netlist.num_gates
        annotation.validate_against(netlist)
        assert annotation.total_delay() > 0

    def test_missing_gate_detected(self):
        netlist = self._netlist()
        annotation = DelayAnnotation.nominal(netlist, default_library())
        del annotation.delays[next(iter(annotation.delays))]
        with pytest.raises(NetlistError):
            annotation.validate_against(netlist)

    def test_unknown_gate_lookup(self):
        annotation = DelayAnnotation(design="x")
        with pytest.raises(TimingError):
            annotation.delay_of("nope")

    def test_negative_delay_rejected(self):
        annotation = DelayAnnotation(design="x")
        with pytest.raises(TimingError):
            annotation.set_delay("g", -1.0)

    def test_serialisation_roundtrip(self):
        netlist = self._netlist()
        annotation = DelayAnnotation.nominal(netlist, default_library(), clock_constraint=3e-10)
        text = annotation.dumps()
        restored = DelayAnnotation.loads(text)
        assert restored.design == annotation.design
        assert restored.clock_constraint == pytest.approx(3e-10)
        for gate in netlist.gates:
            assert restored.delay_of(gate.name) == pytest.approx(annotation.delay_of(gate.name))

    def test_bad_header_rejected(self):
        with pytest.raises(TimingError):
            DelayAnnotation.load(io.StringIO("not an annotation\n"))

    def test_missing_design_rejected(self):
        with pytest.raises(TimingError):
            DelayAnnotation.loads("# repro delay annotation v1\ng1 1e-12\n")
