"""Unit tests for the cell models and the technology library."""

import numpy as np
import pytest

from repro.circuit.cells import CELLS, cell
from repro.circuit.library import DEFAULT_DELAYS_PS, CellTiming, TechnologyLibrary, default_library
from repro.exceptions import ConfigurationError, NetlistError


class TestCells:
    def test_all_cells_have_positive_arity(self):
        for name, definition in CELLS.items():
            assert definition.arity >= 1, name

    def test_unknown_cell(self):
        with pytest.raises(NetlistError):
            cell("XOR9")

    def test_wrong_operand_count(self):
        with pytest.raises(NetlistError):
            cell("AND2").evaluate(1)

    @pytest.mark.parametrize("name,inputs,expected", [
        ("INV", (0,), 1), ("INV", (1,), 0),
        ("BUF", (1,), 1),
        ("AND2", (1, 1), 1), ("AND2", (1, 0), 0),
        ("OR2", (0, 0), 0), ("OR2", (1, 0), 1),
        ("NAND2", (1, 1), 0), ("NOR2", (0, 0), 1),
        ("XOR2", (1, 0), 1), ("XOR2", (1, 1), 0),
        ("XNOR2", (1, 1), 1),
        ("AND3", (1, 1, 1), 1), ("AND3", (1, 0, 1), 0),
        ("OR3", (0, 0, 0), 0), ("OR3", (0, 1, 0), 1),
        ("MUX2", (1, 0, 0), 1), ("MUX2", (1, 0, 1), 0),
        ("MAJ3", (1, 1, 0), 1), ("MAJ3", (1, 0, 0), 0),
        ("AOI21", (1, 1, 0), 0), ("AOI21", (0, 0, 0), 1),
        ("OAI21", (1, 0, 1), 0), ("OAI21", (0, 0, 1), 1),
    ])
    def test_truth_tables(self, name, inputs, expected):
        assert int(cell(name).evaluate(*inputs)) == expected

    def test_vectorised_evaluation(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert cell("XOR2").evaluate(a, b).tolist() == [0, 1, 1, 0]

    def test_maj3_is_full_adder_carry(self):
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert int(cell("MAJ3").evaluate(a, b, c)) == (a + b + c) // 2


class TestCellTiming:
    def test_bounds(self):
        timing = CellTiming(nominal_delay=10e-12, min_scale=0.8, max_scale=1.5)
        assert timing.min_delay == pytest.approx(8e-12)
        assert timing.max_delay == pytest.approx(15e-12)

    def test_invalid_delay(self):
        with pytest.raises(ConfigurationError):
            CellTiming(nominal_delay=0.0)

    def test_invalid_scales(self):
        with pytest.raises(ConfigurationError):
            CellTiming(nominal_delay=1e-12, min_scale=1.2)
        with pytest.raises(ConfigurationError):
            CellTiming(nominal_delay=1e-12, max_scale=0.5)


class TestTechnologyLibrary:
    def test_default_covers_all_cells(self):
        library = default_library()
        assert set(library.cell_names()) == set(CELLS)

    def test_delay_lookup(self):
        library = default_library()
        assert library.delay("INV") == pytest.approx(DEFAULT_DELAYS_PS["INV"] * 1e-12)

    def test_unknown_cell(self):
        with pytest.raises(ConfigurationError):
            default_library().delay("FOO")

    def test_missing_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            TechnologyLibrary({"INV": 10.0})

    def test_extra_cell_rejected(self):
        delays = dict(DEFAULT_DELAYS_PS)
        delays["BOGUS"] = 1.0
        with pytest.raises(ConfigurationError):
            TechnologyLibrary(delays)

    def test_scaled(self):
        library = default_library()
        doubled = library.scaled(2.0)
        assert doubled.delay("XOR2") == pytest.approx(2 * library.delay("XOR2"))
        with pytest.raises(ConfigurationError):
            library.scaled(0.0)

    def test_variation_is_deterministic_with_seed(self):
        base = default_library()
        one = base.with_variation(0.1, seed=3)
        two = base.with_variation(0.1, seed=3)
        assert one.delay("INV") == pytest.approx(two.delay("INV"))
        assert one.delay("INV") != pytest.approx(base.delay("INV"))

    def test_variation_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            default_library().with_variation(-0.1)

    def test_contains(self):
        assert "INV" in default_library()
        assert "FOO" not in default_library()
