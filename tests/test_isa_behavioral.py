"""Unit tests for the behavioural ISA model (repro.core.isa)."""

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.exceptions import ConfigurationError


class TestScalarModel:
    def test_no_fault_means_exact(self):
        """Small operands never provoke a carry across block boundaries."""
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 0, 4)))
        assert adder.add(0x01010101, 0x02020202) == 0x01010101 + 0x02020202

    def test_known_structural_error_without_compensation(self):
        """A carry into an un-speculated boundary is simply dropped."""
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8))
        # 0x00FF + 0x0001 carries into bit 8; speculation guesses 0 and there is
        # no compensation, so the result misses exactly 2**8.
        assert adder.add(0x00FF, 0x0001) == 0x0100 - 0x100

    def test_correction_restores_exact_result(self):
        """With a non-saturated LSB field the correction absorbs the fault."""
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8, correction=2))
        # Upper block local sum LSBs are 0b00 -> incrementable.
        a, b = 0x00FF, 0x0001
        assert adder.add(a, b) == a + b

    def test_reduction_bounds_the_error(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8, reduction=4))
        a, b = 0x00FF, 0x0001
        result = adder.add(a, b)
        exact = a + b
        assert result != exact
        assert abs(result - exact) <= 1 << (8 - 4)

    def test_detailed_records_fault(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8, reduction=4))
        detail = adder.add_detailed(0x00FF, 0x0001)
        assert detail.fault_count == 1
        upper_block = detail.blocks[1]
        assert upper_block.fault and upper_block.reduced and not upper_block.corrected
        assert upper_block.direction == +1
        assert detail.error_positions  # the residual error has a bit-position equivalent

    def test_detailed_exact_when_no_fault(self):
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 1, 4)))
        detail = adder.add_detailed(1, 2)
        assert detail.structural_error == 0
        assert detail.fault_count == 0

    def test_carry_out_preserved(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8, spec_size=4))
        result = adder.add(0xFFFF, 0xFFFF)
        assert result >> 16 == 1

    def test_operand_range_checked(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8))
        with pytest.raises(ConfigurationError):
            adder.add(0x1_0000, 0)

    def test_bad_cin(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8))
        with pytest.raises(ConfigurationError):
            adder.add(1, 1, cin=2)

    def test_name_and_result_width(self):
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 0, 4)))
        assert adder.name == "(8,0,0,4)"
        assert adder.result_width == 33


class TestSpeculationAccuracy:
    def test_larger_spec_window_reduces_errors(self, short_trace32):
        a, b = short_trace32.a, short_trace32.b
        exact = a + b
        rates = []
        for spec in (0, 2, 7):
            adder = InexactSpeculativeAdder(ISAConfig(width=32, block_size=16, spec_size=spec))
            rates.append(float(np.mean(adder.add_many(a, b) != exact)))
        assert rates[0] >= rates[1] >= rates[2]

    def test_reduction_reduces_rms_error(self, short_trace32):
        a, b = short_trace32.a, short_trace32.b
        exact = (a + b).astype(np.int64)
        errors = []
        for reduction in (0, 4):
            adder = InexactSpeculativeAdder(
                ISAConfig(width=32, block_size=8, reduction=reduction))
            gold = adder.add_many(a, b).astype(np.int64)
            errors.append(float(np.sqrt(np.mean(((gold - exact) / exact.astype(float)) ** 2))))
        assert errors[1] < errors[0]


class TestVectorisedModel:
    def test_matches_scalar(self, short_trace32):
        config = ISAConfig.from_quadruple((16, 2, 1, 6))
        adder = InexactSpeculativeAdder(config)
        a, b = short_trace32.a[:100], short_trace32.b[:100]
        vectorised = adder.add_many(a, b)
        scalar = np.array([adder.add(int(x), int(y)) for x, y in zip(a, b)], dtype=np.uint64)
        assert np.array_equal(vectorised, scalar)

    def test_shape_mismatch(self):
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 0, 4)))
        with pytest.raises(ConfigurationError):
            adder.add_many(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))

    def test_range_check(self):
        adder = InexactSpeculativeAdder(ISAConfig(width=16, block_size=8))
        with pytest.raises(ConfigurationError):
            adder.add_many(np.array([0x10000], dtype=np.uint64), np.array([0], dtype=np.uint64))

    def test_stats_collection(self, short_trace32):
        config = ISAConfig.from_quadruple((8, 0, 0, 4))
        adder = InexactSpeculativeAdder(config)
        gold, stats = adder.add_many_with_stats(short_trace32.a, short_trace32.b)
        assert np.array_equal(gold, adder.add_many(short_trace32.a, short_trace32.b))
        assert stats.cycles == short_trace32.length
        # (8,0,0,4) has no correction: every fault is balanced, none corrected.
        assert stats.corrected_counts.sum() == 0
        assert stats.reduced_counts.sum() == stats.fault_counts.sum()
        # Structural errors concentrate below the block boundaries (bits 4-7, 12-15, 20-23).
        rates = stats.error_rate_by_position
        assert rates[4:8].sum() > 0
        assert rates[:4].sum() == 0

    def test_error_bound_holds(self, short_trace32):
        config = ISAConfig.from_quadruple((8, 0, 1, 4))
        adder = InexactSpeculativeAdder(config)
        gold = adder.add_many(short_trace32.a, short_trace32.b).astype(np.int64)
        exact = (short_trace32.a + short_trace32.b).astype(np.int64)
        assert np.max(np.abs(gold - exact)) <= adder.worst_case_error_bound()

    def test_exact_single_block_config_never_errs(self, short_trace32):
        adder = InexactSpeculativeAdder(ISAConfig.exact(32))
        gold = adder.add_many(short_trace32.a, short_trace32.b)
        assert np.array_equal(gold, short_trace32.a + short_trace32.b)
