"""Unit tests for repro.utils.rng and repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        first = ensure_rng(42).integers(0, 1000, 5)
        second = ensure_rng(42).integers(0, 1000, 5)
        assert first.tolist() == second.tolist()

    def test_passthrough_generator(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(7, 5)) == 5

    def test_deterministic(self):
        first = [g.integers(0, 100) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 100) for g in spawn_rngs(7, 3)]
        assert first == second

    def test_streams_differ(self):
        streams = spawn_rngs(7, 2)
        assert streams[0].integers(0, 2**31) != streams[1].integers(0, 2**31)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 3) is None

    def test_deterministic_and_salted(self):
        assert derive_seed(5, 1) == derive_seed(5, 1)
        assert derive_seed(5, 1) != derive_seed(5, 2)


class TestValidationHelpers:
    def test_positive_int_accepts(self):
        assert check_positive_int("x", 3) == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, True])
    def test_positive_int_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", value)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative_int("x", 0) == 0

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_int("x", -2)

    def test_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_in_range(self):
        assert check_in_range("v", 5, 0, 10) == 5
        with pytest.raises(ConfigurationError):
            check_in_range("v", 11, 0, 10)
