"""Shared fixtures for the test suite.

Synthesis and timing simulation are the expensive operations; fixtures
that need them are session-scoped and use reduced widths/trace lengths so
the whole suite stays fast while still exercising real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import uniform_workload


@pytest.fixture(autouse=True)
def _fresh_design_cache():
    """Isolate the process-wide synthesized-design memo between tests.

    ``synthesize_job`` memoises per synthesis identity, so without this
    a test asserting that synthesis *ran* (phase counters, cache
    hit/miss accounting) would observe another test's warm memo.
    """
    from repro.runtime.jobs import clear_design_cache
    from repro.runtime.synth_cache import reset_synth_cache
    clear_design_cache()
    reset_synth_cache()
    yield


@pytest.fixture(scope="session")
def rng():
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_isa_config():
    """A 16-bit ISA configuration small enough for exhaustive-ish checks."""
    return ISAConfig(width=16, block_size=4, spec_size=2, correction=1, reduction=2)


@pytest.fixture(scope="session")
def paper_isa_config():
    """The paper's Fig. 10 configuration (8,0,0,4) at full 32-bit width."""
    return ISAConfig.from_quadruple((8, 0, 0, 4))


@pytest.fixture(scope="session")
def synthesis_options():
    """Default synthesis options used across synthesis/timing tests."""
    return SynthesisOptions()


@pytest.fixture(scope="session")
def synthesized_small_isa(small_isa_config, synthesis_options):
    """Synthesized 16-bit ISA (netlist + delay annotation), shared by timing tests."""
    return synthesize(small_isa_config, synthesis_options)


@pytest.fixture(scope="session")
def synthesized_exact16(synthesis_options):
    """Synthesized 16-bit exact adder, shared by timing tests."""
    return synthesize(exact_adder_netlist(16), synthesis_options)


@pytest.fixture(scope="session")
def clock_plan():
    """The paper's clock plan (0.3 ns safe period, 5/10/15 % CPR)."""
    return ClockPlan.paper()


@pytest.fixture(scope="session")
def short_trace16():
    """Short 16-bit operand trace for timing-simulation tests."""
    return uniform_workload(200, width=16, seed=99)


@pytest.fixture(scope="session")
def short_trace32():
    """Short 32-bit operand trace for behavioural characterisation tests."""
    return uniform_workload(400, width=32, seed=100)
