"""Tests for the from-scratch decision tree and random forest."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.ml.forest import RandomForestClassifier
from repro.ml.regress import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier


def make_dataset(rule, samples=400, features=12, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(samples, features)).astype(np.uint8)
    y = rule(X).astype(np.uint8)
    return X, y


class TestDecisionTree:
    def test_learns_single_feature_rule(self):
        X, y = make_dataset(lambda X: X[:, 3])
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_learns_conjunction(self):
        X, y = make_dataset(lambda X: X[:, 0] & X[:, 5])
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_learns_xor_with_enough_depth(self):
        """XOR has no single-feature gain, but sampling noise lets greedy CART split it."""
        X, y = make_dataset(lambda X: X[:, 0] ^ X[:, 1], samples=800, features=6)
        tree = DecisionTreeClassifier(max_depth=8, min_samples_split=4).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.9

    def test_pure_labels_give_leaf(self):
        X = np.zeros((10, 4), dtype=np.uint8)
        y = np.ones(10, dtype=np.uint8)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0
        assert tree.predict(X).tolist() == [1] * 10

    def test_probability_output_range(self):
        X, y = make_dataset(lambda X: X[:, 0] | X[:, 1])
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        probabilities = tree.predict_proba(X)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_max_depth_respected(self):
        X, y = make_dataset(lambda X: X[:, 0] ^ X[:, 1] ^ X[:, 2], samples=800)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_node_count_positive(self):
        X, y = make_dataset(lambda X: X[:, 2])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count() >= 3

    def test_unfitted_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().predict(np.zeros((2, 3), dtype=np.uint8))

    def test_shape_errors(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((3, 2), dtype=np.uint8),
                                         np.zeros(4, dtype=np.uint8))
        tree = DecisionTreeClassifier().fit(np.zeros((4, 2), dtype=np.uint8),
                                            np.array([0, 1, 0, 1], dtype=np.uint8))
        with pytest.raises(ModelError):
            tree.predict(np.zeros((2, 5), dtype=np.uint8))

    def test_bad_hyperparameters(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((0, 3), dtype=np.uint8),
                                         np.zeros(0, dtype=np.uint8))


class TestRandomForest:
    def test_learns_majority_function(self):
        X, y = make_dataset(lambda X: ((X[:, 0] + X[:, 1] + X[:, 2]) >= 2), samples=600)
        forest = RandomForestClassifier(n_estimators=7, max_depth=5, seed=0).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_deterministic_with_seed(self):
        X, y = make_dataset(lambda X: X[:, 0] & X[:, 4])
        first = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        second = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        assert np.allclose(first, second)

    def test_balanced_class_weight_improves_recall_on_rare_class(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(1500, 10)).astype(np.uint8)
        # rare positive class: only when three specific bits are set (12.5% of samples)
        y = (X[:, 0] & X[:, 1] & X[:, 2]).astype(np.uint8)
        plain = RandomForestClassifier(n_estimators=5, max_depth=3, seed=0).fit(X, y)
        balanced = RandomForestClassifier(n_estimators=5, max_depth=3, seed=0,
                                          class_weight="balanced").fit(X, y)
        positives = y == 1

        def recall(model):
            return float(np.mean(model.predict(X)[positives] == 1))

        assert recall(balanced) >= recall(plain) - 1e-9

    def test_describe_and_is_fitted(self):
        forest = RandomForestClassifier(n_estimators=2)
        assert not forest.is_fitted
        assert "not fitted" in forest.describe()
        X, y = make_dataset(lambda X: X[:, 1])
        forest.fit(X, y)
        assert forest.is_fitted
        assert "2 trees" in forest.describe()

    def test_unfitted_prediction_rejected(self):
        with pytest.raises(ModelError):
            RandomForestClassifier().predict(np.zeros((1, 2), dtype=np.uint8))

    def test_bad_parameters(self):
        with pytest.raises(ModelError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ModelError):
            RandomForestClassifier(class_weight="bogus")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=11))
    def test_single_feature_rules_always_learnable(self, feature):
        X, y = make_dataset(lambda X: X[:, feature], samples=300, seed=feature)
        forest = RandomForestClassifier(n_estimators=5, max_depth=4, seed=1).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.9


def _regress_dataset(func, samples=400, features=6, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2.0, 2.0, size=(samples, features))
    y = func(X)
    if noise:
        y = y + rng.normal(0.0, noise, size=samples)
    return X, y


def _fit_and_predict_regressor(seed):
    """Module-level so ProcessPoolExecutor can pickle it (spawn-safe)."""
    X, y = _regress_dataset(lambda X: 3.0 * X[:, 0] - X[:, 2], seed=5)
    forest = RandomForestRegressor(n_estimators=6, max_depth=8, seed=seed).fit(X, y)
    return forest.predict(X[:50])


class TestDecisionTreeRegressor:
    def test_learns_step_function(self):
        X, y = _regress_dataset(lambda X: np.where(X[:, 1] > 0.5, 4.0, -1.0))
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert np.abs(tree.predict(X) - y).max() < 1e-9

    def test_learns_piecewise_surface(self):
        X, y = _regress_dataset(lambda X: np.sign(X[:, 0]) + 2.0 * np.sign(X[:, 3]))
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert np.abs(tree.predict(X) - y).mean() < 0.05

    def test_constant_target_is_single_leaf(self):
        X = np.arange(20, dtype=np.float64).reshape(10, 2)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 2.5))
        assert tree.depth() == 0
        assert tree.node_count() == 1
        assert tree.predict(X).tolist() == [2.5] * 10

    def test_max_depth_respected(self):
        X, y = _regress_dataset(lambda X: X[:, 0] * X[:, 1], samples=600)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_split=2).fit(X, y)
        assert tree.depth() <= 3

    def test_unfitted_and_bad_shapes_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        tree = DecisionTreeRegressor().fit(np.zeros((4, 2)), np.zeros(4))
        with pytest.raises(ModelError):
            tree.predict(np.zeros((2, 3)))


class TestRandomForestRegressor:
    def test_monotone_round_trip(self):
        """Surrogate sanity: a smooth monotone target is recovered well
        enough that predicted ordering matches the true ordering."""
        X, y = _regress_dataset(lambda X: X[:, 0] + 0.5 * X[:, 1], samples=600,
                                noise=0.01, seed=2)
        forest = RandomForestRegressor(n_estimators=12, max_depth=10, seed=0).fit(X, y)
        grid = np.zeros((9, X.shape[1]))
        grid[:, 0] = np.linspace(-1.5, 1.5, 9)
        predicted = forest.predict(grid)
        assert np.all(np.diff(predicted) > -0.05)
        assert np.corrcoef(forest.predict(X), y)[0, 1] > 0.98

    def test_predict_std_higher_off_support(self):
        X, y = _regress_dataset(lambda X: np.where(X[:, 0] > 0, 5.0, -5.0),
                                samples=300, seed=3)
        forest = RandomForestRegressor(n_estimators=16, seed=1).fit(X, y)
        deep = np.zeros((1, X.shape[1])); deep[0, 0] = 1.5
        boundary = np.zeros((1, X.shape[1])); boundary[0, 0] = 0.0
        assert forest.predict_std(boundary)[0] >= forest.predict_std(deep)[0]

    def test_deterministic_with_seed(self):
        X, y = _regress_dataset(lambda X: X[:, 0] ** 2, seed=4)
        first = RandomForestRegressor(n_estimators=5, seed=9).fit(X, y).predict(X)
        second = RandomForestRegressor(n_estimators=5, seed=9).fit(X, y).predict(X)
        assert np.array_equal(first, second)
        different = RandomForestRegressor(n_estimators=5, seed=10).fit(X, y).predict(X)
        assert not np.array_equal(first, different)

    def test_deterministic_across_processes(self):
        """The adaptive explorer's warm-cache identity rests on this: the
        same seed must grow the same ensemble in any process."""
        from concurrent.futures import ProcessPoolExecutor

        local = _fit_and_predict_regressor(21)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_fit_and_predict_regressor, 21).result()
        assert np.array_equal(local, remote)

    def test_predict_all_shape_and_mean(self):
        X, y = _regress_dataset(lambda X: X[:, 1], samples=100)
        forest = RandomForestRegressor(n_estimators=4, seed=0).fit(X, y)
        stacked = forest.predict_all(X[:10])
        assert stacked.shape == (4, 10)
        assert np.allclose(stacked.mean(axis=0), forest.predict(X[:10]))

    def test_describe_and_is_fitted(self):
        forest = RandomForestRegressor(n_estimators=2)
        assert not forest.is_fitted
        assert "not fitted" in forest.describe()
        X, y = _regress_dataset(lambda X: X[:, 0], samples=50)
        forest.fit(X, y)
        assert forest.is_fitted
        assert "2 trees" in forest.describe()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ModelError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ModelError):
            RandomForestRegressor().fit(np.zeros((0, 2)), np.zeros(0))
