"""Tests for workload generators and operand traces."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.utils.bitops import mask
from repro.workloads.generators import (
    WorkloadSpec,
    correlated_workload,
    gaussian_workload,
    ramp_workload,
    sparse_workload,
    uniform_workload,
)
from repro.workloads.traces import OperandTrace


class TestOperandTrace:
    def test_basic_properties(self):
        trace = OperandTrace(np.array([1, 2, 3], dtype=np.uint64),
                             np.array([4, 5, 6], dtype=np.uint64), width=8, name="t")
        assert trace.length == 3 and len(trace) == 3
        assert trace.transitions == 2

    def test_as_operands_contains_cin(self):
        trace = uniform_workload(5, width=8, seed=0)
        operands = trace.as_operands(cin=1)
        assert set(operands) == {"A", "B", "cin"}
        assert operands["cin"].tolist() == [1] * 5

    def test_range_validation(self):
        with pytest.raises(WorkloadError):
            OperandTrace(np.array([300], dtype=np.uint64), np.array([0], dtype=np.uint64),
                         width=8)

    def test_shape_validation(self):
        with pytest.raises(WorkloadError):
            OperandTrace(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.uint64), width=8)

    def test_split(self):
        trace = uniform_workload(100, width=8, seed=0)
        first, second = trace.split(0.6)
        assert first.length == 60 and second.length == 40
        assert np.array_equal(np.concatenate([first.a, second.a]), trace.a)

    def test_split_bounds(self):
        trace = uniform_workload(10, width=8, seed=0)
        with pytest.raises(WorkloadError):
            trace.split(0.0)
        with pytest.raises(WorkloadError):
            trace.split(0.99)

    def test_take(self):
        trace = uniform_workload(10, width=8, seed=0)
        assert trace.take(4).length == 4
        with pytest.raises(WorkloadError):
            trace.take(11)


class TestGenerators:
    @pytest.mark.parametrize("generator", [uniform_workload, correlated_workload,
                                           gaussian_workload, sparse_workload, ramp_workload])
    def test_respects_width_and_length(self, generator):
        trace = generator(64, width=16, seed=5)
        assert trace.length == 64
        assert trace.width == 16
        assert int(trace.a.max()) <= mask(16)
        assert int(trace.b.max()) <= mask(16)

    def test_uniform_is_seed_deterministic(self):
        first = uniform_workload(32, seed=3)
        second = uniform_workload(32, seed=3)
        assert np.array_equal(first.a, second.a)

    def test_uniform_spans_the_range(self):
        trace = uniform_workload(3000, width=32, seed=1)
        assert int(trace.a.max()) > 2**31

    def test_correlated_has_smaller_steps_than_uniform(self):
        correlated = correlated_workload(500, width=32, seed=2, correlation=0.98)
        uniform = uniform_workload(500, width=32, seed=2)
        correlated_step = np.mean(np.abs(np.diff(correlated.a.astype(np.int64))))
        uniform_step = np.mean(np.abs(np.diff(uniform.a.astype(np.int64))))
        assert correlated_step < uniform_step

    def test_sparse_mostly_small_values(self):
        trace = sparse_workload(500, width=32, seed=3, density=0.1)
        small = np.mean(trace.a < 2**8)
        assert small > 0.5

    def test_gaussian_centered(self):
        trace = gaussian_workload(2000, width=32, seed=4)
        mean = float(trace.a.mean()) / mask(32)
        assert 0.4 < mean < 0.6

    def test_ramp_is_deterministic(self):
        assert np.array_equal(ramp_workload(16, width=8).a, ramp_workload(16, width=8).a)

    def test_invalid_length(self):
        with pytest.raises(Exception):
            uniform_workload(0)


class TestWorkloadSpec:
    def test_generate_uniform(self):
        spec = WorkloadSpec(kind="uniform", length=20, width=16, seed=1)
        trace = spec.generate()
        assert trace.length == 20 and trace.width == 16

    def test_generate_with_parameters(self):
        spec = WorkloadSpec(kind="sparse", length=20, width=16, seed=1,
                            parameters=(("density", 0.5),))
        assert spec.generate().length == 20

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(kind="bogus", length=10).generate()
