"""Unit tests for repro.core.config (ISAConfig)."""

import pytest

from repro.core.config import ISAConfig
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_paper_quadruple(self):
        config = ISAConfig.from_quadruple((8, 0, 0, 4))
        assert config.width == 32
        assert config.quadruple == (8, 0, 0, 4)
        assert config.num_blocks == 4
        assert config.block_offsets == (0, 8, 16, 24)

    def test_name_matches_paper_notation(self):
        assert ISAConfig.from_quadruple((16, 2, 1, 6)).name == "(16,2,1,6)"

    def test_label_is_identifier_safe(self):
        assert ISAConfig.from_quadruple((16, 2, 1, 6)).label == "isa32_16_2_1_6"

    def test_exact_configuration(self):
        exact = ISAConfig.exact(32)
        assert exact.is_exact
        assert exact.num_blocks == 1

    def test_non_exact(self):
        assert not ISAConfig.from_quadruple((8, 0, 0, 0)).is_exact

    def test_with_width(self):
        config = ISAConfig(width=32, block_size=8).with_width(16)
        assert config.width == 16
        assert config.num_blocks == 2

    def test_describe_mentions_blocks(self):
        text = ISAConfig.from_quadruple((8, 0, 1, 4)).describe()
        assert "4 x 8 bits" in text
        assert "1 LSBs" in text


class TestValidation:
    def test_block_must_divide_width(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=5)

    def test_block_larger_than_width(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=8, block_size=16)

    def test_spec_larger_than_block(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=8, spec_size=9)

    def test_correction_larger_than_block(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=8, correction=9)

    def test_reduction_larger_than_block(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=8, reduction=9)

    def test_negative_parameters(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=8, spec_size=-1)

    def test_bad_guess(self):
        with pytest.raises(ConfigurationError):
            ISAConfig(width=32, block_size=8, speculate_on_propagate=2)

    def test_bad_quadruple_length(self):
        with pytest.raises(ConfigurationError):
            ISAConfig.from_quadruple((8, 0, 0))

    def test_frozen(self):
        config = ISAConfig.from_quadruple((8, 0, 0, 4))
        with pytest.raises(Exception):
            config.width = 16


class TestPaperDesigns:
    @pytest.mark.parametrize("quadruple", [
        (8, 0, 0, 0), (8, 0, 0, 2), (8, 0, 0, 4), (8, 0, 1, 4), (8, 0, 1, 6),
        (16, 0, 0, 0), (16, 1, 0, 0), (16, 1, 0, 2), (16, 2, 0, 4),
        (16, 2, 1, 6), (16, 7, 0, 8),
    ])
    def test_all_paper_quadruples_are_valid(self, quadruple):
        config = ISAConfig.from_quadruple(quadruple)
        assert config.quadruple == quadruple
        assert config.width % config.block_size == 0
