"""Unit tests for the error-combination methodology (repro.core.combination)."""

import numpy as np
import pytest

from repro.core.combination import CombinedErrors, combination_flow, combine_errors, relative_errors
from repro.exceptions import AnalysisError


class TestCombineErrors:
    def test_paper_additive_example(self):
        """Fig. 4 of the paper: both contributions negative, they add up."""
        errors = combine_errors([8], [6], [4])
        assert errors.e_struct.tolist() == [-2]
        assert errors.e_timing.tolist() == [-2]
        assert errors.e_joint.tolist() == [-4]
        assert errors.re_struct[0] == pytest.approx(-2 / 8)
        assert errors.re_timing[0] == pytest.approx(-2 / 8)
        assert errors.re_joint[0] == pytest.approx(-4 / 8)

    def test_paper_compensating_example(self):
        """Fig. 5 of the paper: opposite signs partially cancel."""
        errors = combine_errors([8], [6], [7])
        assert errors.re_struct[0] == pytest.approx(-2 / 8)
        assert errors.re_timing[0] == pytest.approx(+1 / 8)
        assert errors.re_joint[0] == pytest.approx(-1 / 8)

    def test_joint_is_sum_of_contributions(self):
        rng = np.random.default_rng(0)
        diamond = rng.integers(1, 2**32, 100, dtype=np.uint64)
        gold = diamond + rng.integers(-5, 5, 100)
        silver = gold + rng.integers(-5, 5, 100)
        errors = combine_errors(diamond, gold, silver)
        assert np.allclose(errors.re_joint, errors.re_struct + errors.re_timing)
        assert np.array_equal(errors.e_joint, errors.e_struct + errors.e_timing)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            combine_errors([1, 2], [1], [1])

    def test_zero_diamond_handled(self):
        errors = combine_errors([0], [1], [2])
        assert np.isfinite(errors.re_joint).all()

    def test_cycles_property(self):
        assert combine_errors([1, 2, 3], [1, 2, 3], [1, 2, 3]).cycles == 3

    def test_mean_absolute_joint_error(self):
        errors = combine_errors([10, 10], [8, 12], [8, 12])
        assert errors.mean_absolute_joint_error() == pytest.approx(2.0)

    def test_rms_relative_errors_zero_when_exact(self):
        errors = combine_errors([5, 6], [5, 6], [5, 6])
        rms = errors.rms_relative_errors()
        assert rms == {"structural": 0.0, "timing": 0.0, "joint": 0.0}

    def test_compensation_rate(self):
        errors = combine_errors([8, 8, 8], [6, 6, 8], [7, 4, 8])
        # first cycle: opposite signs; second: same sign; third: no error
        assert errors.compensation_rate() == pytest.approx(0.5)

    def test_compensation_rate_no_overlap(self):
        errors = combine_errors([8, 8], [8, 8], [7, 9])
        assert errors.compensation_rate() == 0.0


class TestRelativeErrors:
    def test_basic(self):
        values = relative_errors([10, 20], [11, 18])
        assert values.tolist() == pytest.approx([0.1, -0.1])

    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            relative_errors([1, 2], [1])


class TestCombinationFlow:
    def test_flow_mirrors_fig6(self):
        """The flow produces one result per (design, clock) with the right errors."""
        a = np.array([10, 200, 3000], dtype=np.uint64)
        b = np.array([5, 100, 1500], dtype=np.uint64)

        def exact_provider(x, y):
            return x + y

        def gold_provider(design, x, y):
            return x + y - np.uint64(design)

        def silver_provider(design, clk, x, y):
            offset = np.int64(round(clk))
            return (x + y - np.uint64(design)).astype(np.int64) + offset

        results = combination_flow(
            designs=[1, 2], a=a, b=b, clock_periods=[0.0, 1.0],
            gold_provider=gold_provider, silver_provider=silver_provider,
            exact_provider=exact_provider)
        assert len(results) == 4
        first = results[0]
        assert first.design == 1 and first.clock_period == 0.0
        assert first.errors.e_struct.tolist() == [-1, -1, -1]
        assert first.mean_absolute_joint_error == pytest.approx(1.0)
        last = results[-1]
        assert last.design == 2 and last.clock_period == 1.0
        assert last.errors.e_timing.tolist() == [1, 1, 1]
