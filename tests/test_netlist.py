"""Unit tests for the netlist graph and its evaluation (repro.circuit.netlist)."""

import numpy as np
import pytest

from repro.circuit.netlist import CONST0, CONST1, Netlist
from repro.exceptions import NetlistError, SimulationError


def build_xor_netlist():
    """a XOR b built from NAND gates, with a registered 2-bit bus view."""
    netlist = Netlist("xor_from_nand")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.add_gate("g1", "NAND2", [a, b], "n1")
    netlist.add_gate("g2", "NAND2", [a, "n1"], "n2")
    netlist.add_gate("g3", "NAND2", [b, "n1"], "n3")
    netlist.add_gate("g4", "NAND2", ["n2", "n3"], "y")
    netlist.add_output("y")
    netlist.register_bus("Y", ["y"])
    return netlist


class TestConstruction:
    def test_duplicate_input_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_gate_reading_unknown_net(self):
        netlist = Netlist("t")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", "INV", ["missing"], "y")

    def test_gate_redefining_net(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("g1", "INV", ["a"], "y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g2", "INV", ["a"], "y")

    def test_duplicate_gate_name(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("g", "INV", ["a"], "y1")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", "INV", ["a"], "y2")

    def test_wrong_arity(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", "AND2", ["a"], "y")

    def test_output_must_exist(self):
        netlist = Netlist("t")
        with pytest.raises(NetlistError):
            netlist.add_output("nope")

    def test_bus_must_reference_known_nets(self):
        netlist = Netlist("t")
        with pytest.raises(NetlistError):
            netlist.register_bus("B", ["nope"])

    def test_counters_and_lookup(self):
        netlist = build_xor_netlist()
        assert netlist.num_gates == 4
        assert netlist.gate("g1").cell == "NAND2"
        with pytest.raises(NetlistError):
            netlist.gate("missing")
        assert netlist.driver_of("y").name == "g4"
        assert netlist.driver_of("a") is None
        assert netlist.cell_histogram() == {"NAND2": 4}
        assert netlist.logic_depth() == 3


class TestEvaluation:
    def test_xor_truth_table(self):
        netlist = build_xor_netlist()
        for a in (0, 1):
            for b in (0, 1):
                outputs = netlist.evaluate_outputs({"a": a, "b": b})
                assert int(np.asarray(outputs[0])) == a ^ b

    def test_vectorised_evaluation(self):
        netlist = build_xor_netlist()
        values = netlist.evaluate({"a": np.array([0, 1, 1]), "b": np.array([1, 1, 0])})
        assert values["y"].tolist() == [1, 0, 1]

    def test_constants_available(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_gate("g", "AND2", ["a", CONST1], "y")
        netlist.add_output("y")
        outputs = netlist.evaluate_outputs({"a": np.array([0, 1])})
        assert outputs[0].tolist() == [0, 1]

    def test_missing_input_rejected(self):
        netlist = build_xor_netlist()
        with pytest.raises(SimulationError):
            netlist.evaluate({"a": 1})

    def test_non_binary_input_rejected(self):
        netlist = build_xor_netlist()
        with pytest.raises(SimulationError):
            netlist.evaluate({"a": np.array([2]), "b": np.array([0])})


class TestWordLevel:
    def test_encode_decode_roundtrip(self):
        netlist = Netlist("bus")
        nets = [netlist.add_input(f"A[{i}]") for i in range(4)]
        netlist.register_bus("A", nets)
        words = np.array([0b1010, 0b0110], dtype=np.uint64)
        bits = netlist.encode_bus("A", words)
        assert netlist.decode_bus("A", bits).tolist() == [0b1010, 0b0110]

    def test_encode_rejects_oversized_words(self):
        netlist = Netlist("bus")
        nets = [netlist.add_input(f"A[{i}]") for i in range(4)]
        netlist.register_bus("A", nets)
        with pytest.raises(SimulationError):
            netlist.encode_bus("A", np.array([16], dtype=np.uint64))

    def test_unknown_bus(self):
        netlist = Netlist("bus")
        with pytest.raises(NetlistError):
            netlist.encode_bus("A", np.array([1], dtype=np.uint64))

    def test_compute_words_on_xor(self):
        netlist = build_xor_netlist()
        result = netlist.compute_words({"a": np.array([0, 1, 1]), "b": np.array([1, 1, 0])},
                                       output_bus="Y")
        assert result.tolist() == [1, 0, 1]

    def test_compute_words_unknown_operand(self):
        netlist = build_xor_netlist()
        with pytest.raises(NetlistError):
            netlist.compute_words({"zzz": np.array([1])}, output_bus="Y")
