"""Unit tests for repro.core.compensation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.compensation import (
    apply_correction,
    apply_reduction,
    can_correct,
    compensate,
)
from repro.exceptions import ConfigurationError


class TestCanCorrect:
    def test_increment_possible(self):
        assert can_correct(0b1101_0010, correction=2, direction=+1)

    def test_increment_blocked_by_saturated_field(self):
        assert not can_correct(0b0000_0011, correction=2, direction=+1)

    def test_decrement_possible(self):
        assert can_correct(0b01, correction=2, direction=-1)

    def test_decrement_blocked_by_zero_field(self):
        assert not can_correct(0b1100, correction=2, direction=-1)

    def test_no_correction_hardware(self):
        assert not can_correct(0b0, correction=0, direction=+1)

    def test_direction_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            can_correct(0, correction=1, direction=0)


class TestApplyCorrection:
    def test_increment(self):
        assert apply_correction(0b1000_0001, correction=2, direction=+1) == 0b1000_0010

    def test_decrement(self):
        assert apply_correction(0b1000_0001, correction=2, direction=-1) == 0b1000_0000

    def test_saturated_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_correction(0b11, correction=2, direction=+1)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=1, max_value=4))
    def test_correction_stays_within_field(self, local_sum, correction):
        """Correcting never disturbs bits above the correction field."""
        if can_correct(local_sum, correction, +1):
            corrected = apply_correction(local_sum, correction, +1)
            assert corrected >> correction == local_sum >> correction


class TestApplyReduction:
    def test_reduce_up_saturates_msbs(self):
        assert apply_reduction(0b0000_0000, block_size=8, reduction=3, direction=+1) == 0b1110_0000

    def test_reduce_down_clears_msbs(self):
        assert apply_reduction(0b1111_1111, block_size=8, reduction=3, direction=-1) == 0b0001_1111

    def test_zero_reduction_is_identity(self):
        assert apply_reduction(0b1010, block_size=8, reduction=0, direction=+1) == 0b1010

    def test_reduction_larger_than_block_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_reduction(0, block_size=4, reduction=5, direction=+1)


class TestCompensate:
    def test_fully_corrected_fault_has_zero_residual(self):
        outcome = compensate(local_sum=0b0101_0000, previous_sum=0xAB, block_size=8,
                             correction=2, reduction=4, direction=+1, block_offset=8)
        assert outcome.corrected and not outcome.reduced
        assert outcome.residual_error == 0
        assert outcome.local_sum == 0b0101_0001

    def test_uncorrectable_fault_triggers_reduction(self):
        outcome = compensate(local_sum=0b0000_0011, previous_sum=0x00, block_size=8,
                             correction=2, reduction=4, direction=+1, block_offset=8)
        assert outcome.reduced and not outcome.corrected
        assert outcome.previous_sum == 0b1111_0000
        # Residual: missing carry of -256, compensated by +240 from the forced MSBs.
        assert outcome.residual_error == -256 + 240

    def test_no_compensation_hardware(self):
        outcome = compensate(local_sum=0b11, previous_sum=0x12, block_size=8,
                             correction=0, reduction=0, direction=+1, block_offset=16)
        assert not outcome.corrected and not outcome.reduced
        assert outcome.residual_error == -(1 << 16)

    def test_invalid_direction(self):
        with pytest.raises(ConfigurationError):
            compensate(0, 0, 8, 1, 1, direction=0, block_offset=8)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=4))
    def test_residual_error_bounded(self, local_sum, previous_sum, correction, reduction):
        """One fault's residual never exceeds the block weight; correction zeroes it."""
        block_offset = 8
        outcome = compensate(local_sum, previous_sum, block_size=8, correction=correction,
                             reduction=reduction, direction=+1, block_offset=block_offset)
        assert abs(outcome.residual_error) <= 1 << block_offset
        if outcome.corrected:
            assert outcome.residual_error == 0
        if outcome.reduced and previous_sum >> (8 - reduction) == 0:
            # Balancing is fully effective when the preceding MSB field was empty.
            assert abs(outcome.residual_error) <= 1 << (block_offset - reduction)
