"""Vectorized synthesis kernels vs. the per-gate reference implementations.

The levelised NumPy passes of :mod:`repro.timing.sta`,
:mod:`repro.synth.sizing` and :mod:`repro.synth.optimize` promise
*bit-identical* delay annotations and *gate-identical* netlists against
the original per-gate/per-dict implementations (which remain available
through ``vector=False`` / ``REPRO_SYNTH_VECTOR=0``).  These tests pin
that promise across the design space, including seeded variation runs
and designs that fail their clock constraint.
"""

import struct

import pytest

from repro.circuit.sdf import DelayAnnotation
from repro.explore.space import DesignSpace
from repro.explore.sweep import SweepSpec, run_sweep, sweep_clock_plan
from repro.runtime.jobs import clear_design_cache
from repro.synth.adders import kogge_stone_adder
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.synth.optimize import optimize
from repro.synth.sizing import SizingOptions, size_to_constraint
from repro.timing.sta import (
    analyze_timing,
    arrival_times,
    gate_slacks,
    path_gate_counts,
    required_times,
)
from repro.utils.vector import vector_override
from repro.workloads.generators import WorkloadSpec


def _entry_netlist(entry, width, options):
    if entry.is_exact:
        return exact_adder_netlist(width, options.adder_architecture)
    from repro.synth.isa_synth import isa_adder
    return isa_adder(entry.config, sub_adder=options.adder_architecture)


def _gate_tuples(netlist):
    return [(g.name, g.cell, tuple(g.inputs), g.output) for g in netlist.gates]


def _bits(values):
    """Exact byte representation of a float sequence (bit-level compare)."""
    values = list(values)
    return struct.pack(f"<{len(values)}d", *values)


def _assert_dicts_bit_identical(vec, ref):
    # Same keys in the same insertion order, and bit-equal values.
    assert list(vec) == list(ref)
    assert _bits(vec.values()) == _bits(ref.values())


def _assert_designs_identical(vec, ref):
    assert _gate_tuples(vec.netlist) == _gate_tuples(ref.netlist)
    assert vec.netlist.inputs == ref.netlist.inputs
    assert vec.netlist.outputs == ref.netlist.outputs
    ref_delays = {g.name: ref.annotation.delay_of(g.name) for g in ref.netlist.gates}
    vec_delays = {g.name: vec.annotation.delay_of(g.name) for g in vec.netlist.gates}
    _assert_dicts_bit_identical(vec_delays, ref_delays)
    assert _bits([vec.timing_report.critical_path_delay]) == \
        _bits([ref.timing_report.critical_path_delay])
    if ref.sizing_result is not None:
        for name in ("nominal_critical_path", "sized_critical_path",
                     "nominal_total_delay", "sized_total_delay"):
            vec_value = getattr(vec.sizing_result, name)
            ref_value = getattr(ref.sizing_result, name)
            assert type(vec_value) is type(ref_value)
            assert _bits([vec_value]) == _bits([ref_value])
        assert vec.sizing_result.met_constraint == ref.sizing_result.met_constraint


# Full quadruple space at width 8; evenly strided sample at width 16.
WIDTH8_ENTRIES = DesignSpace(width=8).entries()
WIDTH16_ENTRIES = DesignSpace(width=16).entries(max_designs=24)


class TestStaKernels:
    @pytest.fixture(scope="class")
    def annotated(self, synthesized_small_isa):
        design = synthesized_small_isa
        return design.netlist, design.annotation

    def test_arrival_times_bit_identical(self, annotated):
        netlist, annotation = annotated
        with vector_override(True):
            vec = arrival_times(netlist, annotation)
        with vector_override(False):
            ref = arrival_times(netlist, annotation)
        _assert_dicts_bit_identical(vec, ref)

    def test_required_times_bit_identical(self, annotated):
        netlist, annotation = annotated
        for clock in (1e-10, 3e-10, 1e-9):
            with vector_override(True):
                vec = required_times(netlist, annotation, clock)
            with vector_override(False):
                ref = required_times(netlist, annotation, clock)
            _assert_dicts_bit_identical(vec, ref)

    def test_gate_slacks_bit_identical(self, annotated):
        netlist, annotation = annotated
        with vector_override(True):
            vec = gate_slacks(netlist, annotation, 3e-10)
        with vector_override(False):
            ref = gate_slacks(netlist, annotation, 3e-10)
        _assert_dicts_bit_identical(vec, ref)

    def test_path_gate_counts_identical(self, annotated):
        netlist, _ = annotated
        with vector_override(True):
            vec = path_gate_counts(netlist)
        with vector_override(False):
            ref = path_gate_counts(netlist)
        assert list(vec) == list(ref)
        assert list(vec.values()) == list(ref.values())

    def test_analyze_timing_report_identical(self, annotated):
        netlist, annotation = annotated
        with vector_override(True):
            vec = analyze_timing(netlist, annotation, clock_period=3e-10)
        with vector_override(False):
            ref = analyze_timing(netlist, annotation, clock_period=3e-10)
        assert _bits([vec.critical_path_delay]) == _bits([ref.critical_path_delay])
        assert vec.critical_path_gates == ref.critical_path_gates
        assert vec.critical_endpoint == ref.critical_endpoint
        assert _bits([vec.worst_slack]) == _bits([ref.worst_slack])
        _assert_dicts_bit_identical(vec.output_arrivals, ref.output_arrivals)


class TestSizingKernel:
    @pytest.mark.parametrize("factor", [1.5, 0.93, 0.5])
    def test_sizing_bit_identical(self, factor, synthesis_options):
        netlist = kogge_stone_adder(16)
        library = synthesis_options.resolved_library()
        nominal = analyze_timing(
            netlist, DelayAnnotation.nominal(netlist, library)).critical_path_delay
        options = SizingOptions(clock_constraint=nominal * factor)
        with vector_override(True):
            vec = size_to_constraint(netlist, library, options)
        with vector_override(False):
            ref = size_to_constraint(netlist, library, options)
        for name in ("nominal_critical_path", "sized_critical_path",
                     "nominal_total_delay", "sized_total_delay"):
            assert _bits([getattr(vec, name)]) == _bits([getattr(ref, name)])
        assert vec.met_constraint == ref.met_constraint
        vec_delays = {g.name: vec.annotation.delay_of(g.name) for g in netlist.gates}
        ref_delays = {g.name: ref.annotation.delay_of(g.name) for g in netlist.gates}
        _assert_dicts_bit_identical(vec_delays, ref_delays)

    def test_constraint_failing_netlist(self, synthesis_options):
        # A constraint far below what min_delay cells can reach: the
        # fix-up passes bottom out and met_constraint is False on both
        # paths, with identical annotations.
        netlist = kogge_stone_adder(8)
        library = synthesis_options.resolved_library()
        options = SizingOptions(clock_constraint=1e-12)
        with vector_override(True):
            vec = size_to_constraint(netlist, library, options)
        with vector_override(False):
            ref = size_to_constraint(netlist, library, options)
        assert vec.met_constraint is False
        assert ref.met_constraint is False
        vec_delays = {g.name: vec.annotation.delay_of(g.name) for g in netlist.gates}
        ref_delays = {g.name: ref.annotation.delay_of(g.name) for g in netlist.gates}
        _assert_dicts_bit_identical(vec_delays, ref_delays)


class TestOptimizeKernel:
    @pytest.mark.parametrize("entry", WIDTH8_ENTRIES, ids=lambda e: e.name)
    def test_width8_gate_identical(self, entry, synthesis_options):
        netlist = _entry_netlist(entry, 8, synthesis_options)
        with vector_override(True):
            vec = optimize(netlist)
        with vector_override(False):
            ref = optimize(netlist)
        assert _gate_tuples(vec) == _gate_tuples(ref)
        assert vec.outputs == ref.outputs
        assert vec.buses.keys() == ref.buses.keys()


class TestFlowEquivalence:
    @pytest.mark.parametrize("entry", WIDTH16_ENTRIES, ids=lambda e: e.name)
    def test_width16_synthesize_identical(self, entry, synthesis_options):
        netlist = _entry_netlist(entry, 16, synthesis_options)
        with vector_override(True):
            vec = synthesize(netlist, synthesis_options)
        with vector_override(False):
            ref = synthesize(netlist, synthesis_options)
        _assert_designs_identical(vec, ref)

    def test_seeded_variation_identical(self):
        options = SynthesisOptions(variation_sigma=0.05, variation_seed=1234)
        netlist = kogge_stone_adder(16)
        with vector_override(True):
            vec = synthesize(netlist, options)
        with vector_override(False):
            ref = synthesize(netlist, options)
        _assert_designs_identical(vec, ref)

    def test_tight_constraint_flow_identical(self):
        # Flow-level coverage of a design that cannot meet its clock.
        options = SynthesisOptions(clock_constraint=1e-12)
        netlist = kogge_stone_adder(8)
        with vector_override(True):
            vec = synthesize(netlist, options)
        with vector_override(False):
            ref = synthesize(netlist, options)
        assert vec.sizing_result.met_constraint is False
        _assert_designs_identical(vec, ref)


class TestSweepEquivalence:
    def test_small_sweep_value_identical(self):
        entries = tuple(DesignSpace(width=16).entries(max_designs=4))
        spec = SweepSpec(entries=entries, clock_plan=sweep_clock_plan((0.0, 0.10)),
                         workloads=(WorkloadSpec("uniform", 128, width=16, seed=3),),
                         simulator="fast", engine="auto",
                         synthesis=SynthesisOptions(), width=16)
        clear_design_cache()
        with vector_override(False):
            ref = run_sweep(spec, backend="serial")
        clear_design_cache()
        with vector_override(True):
            vec = run_sweep(spec, backend="serial")
        assert len(vec.points) == len(ref.points)
        for vp, rp in zip(vec.points, ref.points):
            assert vp.design == rp.design
            assert _bits([vp.clock_period]) == _bits([rp.clock_period])
            assert _bits([vp.stats.rms_relative_error]) == \
                _bits([rp.stats.rms_relative_error])
            assert _bits([vp.stats.error_rate]) == _bits([rp.stats.error_rate])
            assert _bits([vp.structural_rms]) == _bits([rp.structural_rms])
            assert _bits([vp.timing_rms]) == _bits([rp.timing_rms])
            assert vp.cost.gates == rp.cost.gates
