"""Tests for error metrics, bit-error distributions and text reports."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.distribution import BitErrorDistribution, bit_error_distribution
from repro.analysis.metrics import (
    error_rate,
    error_statistics,
    mean_error_distance,
    mean_relative_error_distance,
    normalized_mean_error_distance,
    rms_relative_error,
    worst_case_error,
)
from repro.analysis.report import format_log_value, format_table
from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.exceptions import AnalysisError
from repro.timing.errors import TimingErrorTrace


class TestScalarMetrics:
    def test_error_rate(self):
        assert error_rate([1, 2, 3, 4], [1, 2, 0, 4]) == pytest.approx(0.25)

    def test_mean_error_distance(self):
        assert mean_error_distance([10, 10], [8, 14]) == pytest.approx(3.0)

    def test_normalized_med(self):
        assert normalized_mean_error_distance([0], [16], width=4) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            normalized_mean_error_distance([0], [1], width=0)

    def test_mred(self):
        assert mean_relative_error_distance([10, 100], [11, 90]) == pytest.approx((0.1 + 0.1) / 2)

    def test_rms_relative_error(self):
        assert rms_relative_error([10, 10], [11, 9]) == pytest.approx(0.1)

    def test_worst_case(self):
        assert worst_case_error([5, 5, 5], [5, 1, 7]) == 4

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            error_rate([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            rms_relative_error([1, 2], [1])

    def test_zero_exact_handled(self):
        assert np.isfinite(rms_relative_error([0, 4], [1, 4]))

    @given(st.lists(st.integers(min_value=1, max_value=2**40), min_size=1, max_size=50))
    def test_identical_outputs_have_zero_errors(self, values):
        stats = error_statistics(values, values, width=48)
        assert stats.error_rate == 0.0
        assert stats.rms_relative_error == 0.0
        assert stats.worst_case_error == 0
        assert stats.snr_db() == float("inf")

    def test_statistics_bundle(self):
        stats = error_statistics([100, 200], [90, 220], width=16)
        assert stats.samples == 2
        assert stats.as_dict()["worst_case"] == 20
        assert stats.snr_db() > 0

    def test_isa_statistics_are_consistent(self, short_trace32):
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 0, 4)))
        gold = adder.add_many(short_trace32.a, short_trace32.b)
        exact = short_trace32.a + short_trace32.b
        stats = error_statistics(exact, gold, width=33)
        assert 0 < stats.error_rate < 1
        assert stats.mean_relative_error_distance <= stats.error_rate
        assert stats.worst_case_error <= adder.worst_case_error_bound()


class TestDistribution:
    def test_distribution_from_models(self, short_trace32):
        config = ISAConfig.from_quadruple((8, 0, 0, 4))
        adder = InexactSpeculativeAdder(config)
        gold, stats = adder.add_many_with_stats(short_trace32.a, short_trace32.b)
        # synthetic timing trace with errors on bit 20
        settled = gold[1:]
        sampled = settled ^ np.uint64(1 << 20)
        timing = TimingErrorTrace(clock_period=2.55e-10, sampled_words=sampled,
                                  settled_words=settled, output_width=33)
        distribution = bit_error_distribution(config.name, 32, stats, timing)
        assert distribution.structural.shape == (33,)
        assert distribution.timing[20] == pytest.approx(1.0)
        assert distribution.structural[4:8].sum() > 0
        assert int(distribution.positions[-1]) == 32
        rows = list(distribution.rows())
        assert len(rows) == 33

    def test_dominant_source(self):
        structural = np.zeros(5)
        timing = np.zeros(5)
        structural[1] = 0.5
        distribution = BitErrorDistribution("d", None, 4, structural, timing)
        assert distribution.dominant_source() == "structural"
        balanced = BitErrorDistribution("d", None, 4, structural, structural * 0.8)
        assert balanced.dominant_source() == "balanced"
        empty = BitErrorDistribution("d", None, 4, np.zeros(5), np.zeros(5))
        assert empty.dominant_source() == "none"

    def test_mismatched_series_rejected(self):
        with pytest.raises(AnalysisError):
            BitErrorDistribution("d", None, 4, np.zeros(5), np.zeros(4))


class TestReport:
    def test_format_log_value_floors_zero(self):
        assert format_log_value(0.0) == "1.00e-06"
        assert format_log_value(0.5) == "5.00e-01"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert len(lines) == 6

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [["only-one"]])
