"""Tests of the adaptive frontier-guided explorer (repro.explore.adaptive).

The contract under test: the quadruple feature matrix agrees with the
analytic `ISAConfig` properties; the search respects its budget and
stays inside the candidate space; the same seed reproduces the same
batches (and therefore a warm result cache serves a re-run with zero
simulated jobs); the recovered frontier is a subset of the measured
points; and — the headline claim — at width 16 the search recovers at
least 90 % of the exhaustive frontier while simulating at most 20 % of
the 889-quadruple space, under the serial and multiprocess backends
alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.exceptions import ConfigurationError
from repro.experiments.designs import exact_entry
from repro.explore.adaptive import (
    AdaptiveSpec,
    RoundLog,
    candidate_matrix,
    frontier_recall,
    quadruple_features,
    run_adaptive,
)
from repro.explore.cli import main as explore_main
from repro.explore.pareto import aggregate_points, frontier_keys, pareto_frontier
from repro.explore.space import DesignSpace
from repro.explore.sweep import SweepSpec, run_sweep, sweep_clock_plan
from repro.runtime import CachingBackend, SerialBackend
from repro.workloads.generators import WorkloadSpec

WIDTH = 16


def sweep_template(width=WIDTH, length=64, cpr_levels=(0.0, 0.10)) -> SweepSpec:
    """Template sweep of the adaptive tests: entries replaced per batch."""
    return SweepSpec(entries=(exact_entry(width),),
                     clock_plan=sweep_clock_plan(cpr_levels),
                     workloads=(WorkloadSpec("uniform", length, width=width, seed=11),),
                     width=width)


@pytest.fixture(scope="module")
def exhaustive_width16():
    """Exhaustive width-16 sweep: the reference frontier of the recall tests."""
    space = DesignSpace(width=WIDTH)
    template = sweep_template()
    result = run_sweep(template.with_entries(space.entries(include_exact=True)),
                       backend="serial")
    frontier = pareto_frontier(aggregate_points(result.points))
    return space, template, frontier


class TestQuadrupleFeatures:
    def test_provable_exactness_matches_isaconfig(self):
        space = DesignSpace(width=WIDTH)
        quadruples = candidate_matrix(space)
        features = quadruple_features(quadruples, WIDTH)
        column = features[:, 6]
        for row, quadruple in zip(column, space.iter_quadruples()):
            config = ISAConfig.from_quadruple(quadruple, width=WIDTH)
            assert bool(row) == config.is_provably_exact

    def test_feature_values(self):
        features = quadruple_features(np.array([[8, 2, 1, 4]]), 16)
        block, spec, correction, reduction, overhead = features[0, :5]
        assert (block, spec, correction, reduction) == (8.0, 2.0, 1.0, 4.0)
        assert overhead == 7.0
        assert features[0, 5] == 2.0  # num_blocks
        assert features[0, 7] == pytest.approx(2 / 8)
        assert features[0, 10] == pytest.approx(8 / 16)

    def test_candidate_matrix_matches_enumeration(self):
        space = DesignSpace(width=8)
        matrix = candidate_matrix(space)
        assert matrix.shape == (space.size, 4)
        assert [tuple(row) for row in matrix] == space.quadruples()


class TestAdaptiveSpecValidation:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=DesignSpace(width=8), sweep=sweep_template(width=16))

    def test_bad_knobs_rejected(self):
        space, template = DesignSpace(width=WIDTH), sweep_template()
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, batch_size=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, budget_fraction=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, budget_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, budget=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, patience=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template, explore_fraction=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveSpec(space=space, sweep=template,
                         neighbor_fraction=0.6, explore_fraction=0.4)

    def test_resolved_budget(self):
        spec = AdaptiveSpec(space=DesignSpace(width=WIDTH), sweep=sweep_template(),
                            budget_fraction=0.2)
        assert spec.resolved_budget(889) == 177  # floor: never over the fraction
        assert spec.resolved_budget(3) == 1
        absolute = AdaptiveSpec(space=DesignSpace(width=WIDTH),
                                sweep=sweep_template(), budget=40)
        assert absolute.resolved_budget(889) == 40


class TestFrontierRecall:
    def test_identity_and_empty(self, exhaustive_width16):
        _, _, frontier = exhaustive_width16
        assert frontier_recall(frontier, frontier) == 1.0
        assert frontier_recall([], frontier) == 1.0
        assert frontier_recall(frontier, []) == 0.0


class TestAdaptiveSearch:
    def test_recall_at_width16_serial(self, exhaustive_width16):
        """The headline claim: >= 90 % frontier recall simulating <= 20 %
        of the 889-quadruple width-16 space."""
        space, template, reference = exhaustive_width16
        spec = AdaptiveSpec(space=space, sweep=template, seed=7)
        result = run_adaptive(spec, backend="serial")
        assert result.candidates == 889
        assert result.simulated <= int(np.ceil(0.2 * 889))
        assert result.fraction_simulated <= 0.2 + 1e-9
        assert frontier_recall(reference, result.frontier) >= 0.9

    def test_multiprocess_matches_serial(self, exhaustive_width16):
        """Batch selection is seed-deterministic, so the measured
        frontier is identical through either backend."""
        space, template, _ = exhaustive_width16
        spec = AdaptiveSpec(space=space, sweep=template, budget=60, seed=7)
        serial = run_adaptive(spec, backend="serial")
        parallel = run_adaptive(spec, backend="multiprocess", workers=2)
        assert frontier_keys(serial.frontier) == frontier_keys(parallel.frontier)
        assert serial.simulated == parallel.simulated == 60
        assert [log.simulated for log in serial.rounds] == \
            [log.simulated for log in parallel.rounds]

    def test_multiprocess_recall(self, exhaustive_width16):
        space, template, reference = exhaustive_width16
        spec = AdaptiveSpec(space=space, sweep=template, seed=7)
        result = run_adaptive(spec, backend="multiprocess", workers=2)
        assert frontier_recall(reference, result.frontier) >= 0.9
        assert result.fraction_simulated <= 0.2 + 1e-9

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        space = DesignSpace(width=WIDTH)
        spec = AdaptiveSpec(space=space, sweep=sweep_template(), budget=30, seed=7)
        backend = CachingBackend(SerialBackend(), tmp_path)
        cold = run_adaptive(spec, backend=backend)
        cold_misses = backend.stats.misses
        assert cold_misses > 0
        warm = run_adaptive(spec, backend=backend)
        assert backend.stats.misses == cold_misses  # zero new simulations
        assert frontier_keys(cold.frontier) == frontier_keys(warm.frontier)

    def test_budget_and_rounds_respected(self):
        space = DesignSpace(width=WIDTH)
        spec = AdaptiveSpec(space=space, sweep=sweep_template(), budget=20,
                            batch_size=4, max_rounds=3, seed=7)
        result = run_adaptive(spec, backend="serial")
        # seed batch (2 x batch) plus at most max_rounds acquisition batches
        assert result.simulated <= 8 + 3 * 4
        assert len(result.rounds) <= 4
        assert result.budget == 20

    def test_frontier_is_measured_only(self):
        space = DesignSpace(width=WIDTH, block_sizes=(8,), max_overhead_bits=2)
        spec = AdaptiveSpec(space=space, sweep=sweep_template(), budget_fraction=0.5,
                            batch_size=4, seed=7)
        result = run_adaptive(spec, backend="serial")
        measured = {point.design for point in result.points}
        assert all(point.design in measured for point in result.frontier)
        simulated_quadruples = {point.quadruple for point in result.points
                                if point.quadruple is not None}
        assert len(simulated_quadruples) == result.simulated

    def test_progress_callback_and_round_logs(self):
        space = DesignSpace(width=WIDTH, block_sizes=(8,), max_overhead_bits=2)
        seen = []
        spec = AdaptiveSpec(space=space, sweep=sweep_template(), budget=12,
                            batch_size=4, seed=7)
        result = run_adaptive(spec, backend="serial", progress=seen.append)
        assert seen == result.rounds
        assert all(isinstance(log, RoundLog) for log in seen)
        assert seen[0].index == 0 and seen[0].scored == 0
        assert "seed" in seen[0].describe()
        assert seen[-1].total_simulated == result.simulated
        if len(seen) > 1:
            assert seen[1].scored > 0
            assert "round 1" in seen[1].describe()

    def test_describe_mentions_budget_and_fraction(self):
        space = DesignSpace(width=WIDTH, block_sizes=(8,), max_overhead_bits=2)
        spec = AdaptiveSpec(space=space, sweep=sweep_template(), budget=8,
                            batch_size=4, seed=7)
        result = run_adaptive(spec, backend="serial")
        text = result.describe()
        assert "budget 8" in text
        assert "% of the space" in text


class TestAdaptiveCli:
    def test_adaptive_flag_runs_search(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = explore_main([
            "--width", "8", "--adaptive", "--budget", "12", "--batch-size", "4",
            "--rounds", "2", "--length", "32", "--no-cache", "--no-synth-cache",
            "--output", str(output)])
        assert exit_code == 0
        text = output.read_text()
        assert "adaptive search" in text
        assert "Pareto frontier" in text
        assert "explored 12 of 160 designs" in text

    def test_adaptive_flag_validation(self, capsys):
        with pytest.raises(SystemExit):
            explore_main(["--adaptive", "--budget-fraction", "0"])
        with pytest.raises(SystemExit):
            explore_main(["--adaptive", "--budget", "0"])
        with pytest.raises(SystemExit):
            explore_main(["--adaptive", "--batch-size", "0"])
        with pytest.raises(SystemExit):
            explore_main(["--adaptive", "--rounds", "-1"])
