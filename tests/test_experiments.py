"""Integration tests for the experiment drivers (tiny trace lengths).

These tests run the real pipelines end to end — synthesis, timing
simulation, model training, error combination — but with very short
traces and the fast simulator so the suite stays quick.  The qualitative
checks mirror the paper's headline observations.
"""

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.exceptions import ConfigurationError
from repro.experiments.common import StudyConfig, characterize_design
from repro.experiments.designs import (
    FIG10_QUADRUPLE,
    PAPER_QUADRUPLES,
    DesignEntry,
    exact_entry,
    isa_entry,
    paper_design_entries,
)
from repro.experiments.fig9_rms import fig9_rows_from_characterization, run_fig9
from repro.experiments.fig10_distribution import run_fig10
from repro.experiments.prediction import run_prediction_study, study_design


@pytest.fixture(scope="module")
def tiny_config():
    """Very small study configuration used by the integration tests."""
    return StudyConfig(characterization_length=250, training_length=250,
                       evaluation_length=200, seed=5, simulator="fast")


@pytest.fixture(scope="module")
def tiny_entries():
    """A representative subset of designs: one per block size plus the exact adder."""
    return [isa_entry((8, 0, 0, 4)), isa_entry((16, 2, 1, 6)), exact_entry()]


class TestDesignCatalogue:
    def test_paper_has_eleven_isa_designs(self):
        assert len(PAPER_QUADRUPLES) == 11

    def test_entries_include_exact_last(self):
        entries = paper_design_entries()
        assert len(entries) == 12
        assert entries[-1].is_exact
        assert entries[0].name == "(8,0,0,0)"

    def test_fig10_design_is_in_the_catalogue(self):
        assert FIG10_QUADRUPLE in PAPER_QUADRUPLES

    def test_isa_entry_roundtrip(self):
        entry = isa_entry((16, 7, 0, 8))
        assert entry.name == "(16,7,0,8)"
        assert not entry.is_exact


class TestStudyConfig:
    def test_defaults(self):
        config = StudyConfig()
        assert config.simulator == "event"
        assert len(config.clock_plan.periods) == 3

    def test_invalid_simulator(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(simulator="spice")

    def test_too_short_traces_rejected(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(training_length=2)

    def test_scaled_down(self):
        config = StudyConfig(trace_scale=1.0).scaled_down(0.1)
        assert config.trace_scale == pytest.approx(0.1)
        assert config.characterization_trace().length == 400
        with pytest.raises(ConfigurationError):
            StudyConfig().scaled_down(0)

    def test_traces_are_deterministic(self, tiny_config):
        assert np.array_equal(tiny_config.characterization_trace().a,
                              tiny_config.characterization_trace().a)
        assert not np.array_equal(tiny_config.characterization_trace().a,
                                  tiny_config.training_trace().a)


class TestCharacterization:
    def test_characterize_isa(self, tiny_config):
        entry = isa_entry((8, 0, 0, 4))
        trace = tiny_config.characterization_trace()
        characterization = characterize_design(entry, trace, tiny_config,
                                               collect_structural_stats=True)
        assert characterization.name == "(8,0,0,4)"
        assert characterization.structural_stats is not None
        assert set(characterization.timing_traces) == set(tiny_config.clock_plan.periods)
        # the golden words differ from the exact (diamond) words on some cycles
        assert np.any(characterization.gold_words != characterization.diamond_words)
        # and the timing simulation settles to the golden words
        for timing in characterization.timing_traces.values():
            assert np.array_equal(timing.settled_words, characterization.gold_words[1:])

    def test_characterize_exact(self, tiny_config):
        characterization = characterize_design(exact_entry(), tiny_config.characterization_trace(),
                                               tiny_config)
        assert np.array_equal(characterization.gold_words, characterization.diamond_words)
        assert characterization.structural_stats is None

    def test_unknown_clock_lookup_rejected(self, tiny_config):
        characterization = characterize_design(isa_entry((8, 0, 0, 0)),
                                               tiny_config.characterization_trace(), tiny_config)
        with pytest.raises(ConfigurationError):
            characterization.timing_trace(1.0)


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9_result(self, tiny_config, tiny_entries):
        trace = tiny_config.characterization_trace()
        characterizations = [characterize_design(entry, trace, tiny_config)
                             for entry in tiny_entries]
        rows = []
        for characterization in characterizations:
            rows.extend(fig9_rows_from_characterization(characterization, tiny_config))
        from repro.experiments.fig9_rms import Fig9Result
        return Fig9Result(rows=rows, cpr_levels=tiny_config.clock_plan.cpr_levels)

    def test_row_count(self, fig9_result, tiny_entries, tiny_config):
        assert len(fig9_result.rows) == len(tiny_entries) * len(tiny_config.clock_plan.cpr_levels)

    def test_exact_adder_has_no_structural_error(self, fig9_result):
        for cpr in (0.05, 0.10, 0.15):
            assert fig9_result.row("exact", cpr).structural_rms == 0.0

    def test_isa_structural_error_is_cpr_independent(self, fig9_result):
        values = {fig9_result.row("(8,0,0,4)", cpr).structural_rms for cpr in (0.05, 0.10, 0.15)}
        assert len(values) == 1

    def test_low_accuracy_isa_has_larger_structural_error(self, fig9_result):
        low = fig9_result.row("(8,0,0,4)", 0.05).structural_rms
        high = fig9_result.row("(16,2,1,6)", 0.05).structural_rms
        assert low > high

    def test_timing_error_grows_with_cpr(self, fig9_result):
        for design in ("exact", "(16,2,1,6)"):
            series = [fig9_result.row(design, cpr).timing_rms for cpr in (0.05, 0.10, 0.15)]
            assert series[0] <= series[1] <= series[2]

    def test_formatting(self, fig9_result):
        text = fig9_result.format_table()
        assert "Fig. 9" in text and "(8,0,0,4)" in text and "exact" in text
        nested = fig9_result.to_dict()
        assert "5%" in nested and "exact" in nested["5%"]
        assert fig9_result.best_design(0.05) != ""
        assert fig9_result.worst_design(0.15) != ""

    def test_unknown_row_lookup(self, fig9_result):
        with pytest.raises(KeyError):
            fig9_result.row("nope", 0.05)


class TestFig10:
    def test_distribution_shape(self, tiny_config):
        result = run_fig10(tiny_config)
        assert result.distribution.design == "(8,0,0,4)"
        assert result.distribution.structural.shape == (33,)
        # structural errors concentrate just below the block boundaries
        peaks = result.structural_peak_positions(top=4)
        assert all(4 <= position < 24 for position in peaks)
        assert "Fig. 10" in result.format_table()

    def test_supplied_characterization_must_have_stats(self, tiny_config):
        entry = isa_entry(FIG10_QUADRUPLE)
        characterization = characterize_design(entry, tiny_config.characterization_trace(),
                                               tiny_config, collect_structural_stats=False)
        with pytest.raises(ValueError):
            run_fig10(tiny_config, characterization=characterization)


class TestPredictionStudy:
    def test_single_design_study(self, tiny_config):
        rows = study_design(isa_entry((16, 1, 0, 2)), tiny_config,
                            tiny_config.training_trace(), tiny_config.evaluation_trace())
        assert len(rows) == 3
        for row in rows:
            assert row.abper >= 1e-6
            assert row.avpe >= 1e-6
            assert 0.0 <= row.precision <= 1.0
            assert 0.0 <= row.recall <= 1.0

    def test_full_study_formatting(self, tiny_config):
        config = StudyConfig(characterization_length=100, training_length=120,
                             evaluation_length=100, seed=3, simulator="fast")
        result = run_prediction_study(config)
        assert len(result.rows) == 12 * 3
        abper_table = result.format_abper_table()
        avpe_table = result.format_avpe_table()
        assert "Fig. 7" in abper_table and "Fig. 8" in avpe_table
        assert "(16,7,0,8)" in abper_table
        assert "exact" in result.to_dict()["5%"]
