"""Tests of the persistent synthesis cache (repro.runtime.synth_cache)."""

import dataclasses
import struct

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.designs import exact_entry, isa_entry
from repro.runtime.jobs import CharacterizationJob, clear_design_cache, synthesize_job
from repro.runtime.synth_cache import (
    SYNTH_CACHE_ENV,
    SYNTH_CACHE_LIMIT_ENV,
    SynthesisCache,
    active_synth_cache,
    cacheable,
    configure_synth_cache,
    synth_digest,
)
from repro.synth.flow import SynthesisOptions
from repro.utils.phases import collect_phases
from repro.workloads.generators import uniform_workload

ENTRY = isa_entry((4, 2, 1, 4), width=16)


def make_job(**overrides):
    defaults = dict(entry=ENTRY, trace=uniform_workload(64, width=16, seed=5),
                    clock_periods=(3e-10,), simulator="fast", width=16,
                    synthesis=SynthesisOptions())
    defaults.update(overrides)
    return CharacterizationJob(**defaults)


class TestSynthDigest:
    def test_stable_across_equal_options(self):
        a = synth_digest(ENTRY, 16, SynthesisOptions())
        b = synth_digest(ENTRY, 16, SynthesisOptions())
        assert a == b

    def test_distinguishes_entry_width_and_options(self):
        base = synth_digest(ENTRY, 16, SynthesisOptions())
        assert synth_digest(exact_entry(), 16, SynthesisOptions()) != base
        assert synth_digest(ENTRY, 8, SynthesisOptions()) != base
        assert synth_digest(
            ENTRY, 16, SynthesisOptions(clock_constraint=2.9e-10)) != base

    def test_seed_normalised_away_without_variation(self):
        # With sigma == 0 the seed cannot influence the result; all
        # unvaried runs must share one entry.
        assert synth_digest(ENTRY, 16, SynthesisOptions(variation_seed=11)) == \
            synth_digest(ENTRY, 16, SynthesisOptions(variation_seed=None))

    def test_seed_keyed_with_variation(self):
        with_seed = synth_digest(
            ENTRY, 16, SynthesisOptions(variation_sigma=0.05, variation_seed=11))
        other_seed = synth_digest(
            ENTRY, 16, SynthesisOptions(variation_sigma=0.05, variation_seed=12))
        assert with_seed != other_seed

    def test_cacheable_guard(self):
        assert cacheable(SynthesisOptions())
        assert cacheable(SynthesisOptions(variation_sigma=0.05, variation_seed=3))
        assert not cacheable(SynthesisOptions(
            variation_sigma=0.05, variation_seed=np.random.default_rng(3)))


class TestSynthesisCache:
    def test_round_trip_bit_identical(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        options = SynthesisOptions()
        assert cache.load(ENTRY, 16, options) is None
        design = synthesize_job(make_job())
        cache.store_design(ENTRY, 16, options, design)
        loaded = cache.load(ENTRY, 16, options)
        assert loaded is not None
        assert [g.name for g in loaded.netlist.gates] == \
            [g.name for g in design.netlist.gates]
        fresh = [design.annotation.delay_of(g.name) for g in design.netlist.gates]
        disk = [loaded.annotation.delay_of(g.name) for g in loaded.netlist.gates]
        assert struct.pack(f"<{len(fresh)}d", *fresh) == \
            struct.pack(f"<{len(disk)}d", *disk)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_non_cacheable_options_bypass(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        options = SynthesisOptions(variation_sigma=0.05,
                                   variation_seed=np.random.default_rng(3))
        design = synthesize_job(make_job())
        cache.store_design(ENTRY, 16, options, design)
        assert cache.load(ENTRY, 16, options) is None
        # A bypass is silent: neither a hit nor a miss is recorded.
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        assert cache.store.total_bytes() == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        options = SynthesisOptions()
        design = synthesize_job(make_job())
        cache.store_design(ENTRY, 16, options, design)
        path = cache.store.result_path(synth_digest(ENTRY, 16, options))
        path.write_bytes(b"truncated garbage")
        assert cache.load(ENTRY, 16, options) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_byte_budget_prunes_oldest(self, tmp_path):
        cache = SynthesisCache(tmp_path)
        design = synthesize_job(make_job())
        cache.store_design(ENTRY, 16, SynthesisOptions(), design)
        entry_bytes = cache.store.total_bytes()
        # Budget fits roughly one entry; storing more must prune.
        limited = SynthesisCache(tmp_path, limit_mb=entry_bytes * 1.5 / (1024 * 1024))
        for seed in (1, 2, 3):
            limited.store_design(
                ENTRY, 16,
                SynthesisOptions(variation_sigma=0.05, variation_seed=seed), design)
        assert limited.stats.pruned > 0
        assert limited.store.total_bytes() <= limited.store.limit_bytes

    def test_invalid_limit_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SynthesisCache(tmp_path, limit_mb=0)


class TestActivation:
    def test_env_activates_and_deactivates(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SYNTH_CACHE_ENV, raising=False)
        assert active_synth_cache() is None
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        cache = active_synth_cache()
        assert cache is not None
        assert cache.store.root == tmp_path
        # Same env -> same instance (stats accumulate across calls).
        assert active_synth_cache() is cache
        monkeypatch.delenv(SYNTH_CACHE_ENV)
        assert active_synth_cache() is None

    def test_env_limit_parsed_and_validated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(SYNTH_CACHE_LIMIT_ENV, "2.5")
        cache = active_synth_cache()
        assert cache.store.limit_bytes == int(2.5 * 1024 * 1024)
        monkeypatch.setenv(SYNTH_CACHE_LIMIT_ENV, "not-a-number")
        with pytest.raises(ConfigurationError):
            active_synth_cache()
        monkeypatch.setenv(SYNTH_CACHE_LIMIT_ENV, "-1")
        with pytest.raises(ConfigurationError):
            active_synth_cache()

    def test_configure_exports_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SYNTH_CACHE_ENV, raising=False)
        cache = configure_synth_cache(tmp_path, limit_mb=4)
        try:
            import os
            assert os.environ[SYNTH_CACHE_ENV] == str(tmp_path)
            assert float(os.environ[SYNTH_CACHE_LIMIT_ENV]) == 4
            assert active_synth_cache() is cache
        finally:
            configure_synth_cache(None)
        import os
        assert SYNTH_CACHE_ENV not in os.environ
        assert active_synth_cache() is None


class TestSynthesizeJobReadThrough:
    def test_warm_cache_synthesizes_zero_designs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        job = make_job()
        with collect_phases() as cold:
            first = synthesize_job(job)
        assert cold.calls.get("synthesize", 0) == 1

        # A fresh process is simulated by clearing the in-memory memo;
        # the disk entry must satisfy the request without running the
        # flow at all (the acceptance criterion the benchmark asserts).
        clear_design_cache()
        with collect_phases() as warm:
            second = synthesize_job(job)
        assert warm.calls.get("synthesize", 0) == 0
        assert warm.calls.get("synth.optimize", 0) == 0
        assert [g.name for g in second.netlist.gates] == \
            [g.name for g in first.netlist.gates]
        stats = active_synth_cache().stats
        assert stats.hits == 1 and stats.misses == 1

    def test_memo_hit_skips_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        job = make_job()
        first = synthesize_job(job)
        second = synthesize_job(job)
        assert second is first
        # Only the cold call touched the store.
        assert active_synth_cache().stats.misses == 1
        assert active_synth_cache().stats.hits == 0

    def test_jobs_differing_only_in_trace_share_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        synthesize_job(make_job())
        clear_design_cache()
        other = make_job(trace=uniform_workload(64, width=16, seed=99),
                         clock_periods=(2.7e-10, 3e-10), engine="compiled")
        with collect_phases() as phases:
            synthesize_job(other)
        assert phases.calls.get("synthesize", 0) == 0
        assert active_synth_cache().stats.hits == 1

    def test_non_cacheable_job_never_stored(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SYNTH_CACHE_ENV, str(tmp_path))
        job = make_job(synthesis=SynthesisOptions(
            variation_sigma=0.05, variation_seed=np.random.default_rng(7)))
        synthesize_job(job)
        cache = active_synth_cache()
        assert cache.store.total_bytes() == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0
