"""Tests for the command-line runner and the top-level public API."""

import os

import numpy as np
import pytest

import repro
from repro.experiments.runner import build_parser, main, run_all
from repro.experiments.common import StudyConfig, shutdown_backends


def figure_sections(report: str) -> str:
    """A report minus its timing footer (the only run-dependent line)."""
    return "\n".join(line for line in report.splitlines()
                     if not line.startswith("(regenerated"))


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        adder = repro.InexactSpeculativeAdder(repro.ISAConfig.from_quadruple((8, 0, 0, 4)))
        result = adder.add_detailed(0x12345678, 0x0FEDCBA9)
        assert result.value >= 0
        assert result.structural_error == result.value - (0x12345678 + 0x0FEDCBA9)

    def test_exported_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_synthesize_and_plan(self):
        design = repro.synthesize(repro.ISAConfig(width=16, block_size=8, reduction=2))
        assert design.critical_path_delay > 0
        plan = repro.ClockPlan.paper()
        assert len(plan.periods) == 3

    def test_combine_errors_export(self):
        errors = repro.combine_errors([8], [6], [7])
        assert errors.e_joint.tolist() == [-1]

    def test_uniform_workload_export(self):
        trace = repro.uniform_workload(8, width=16, seed=0)
        assert trace.length == 8


class TestRunnerCli:
    def test_parser_defaults(self):
        arguments = build_parser().parse_args([])
        assert arguments.scale == 1.0
        assert arguments.simulator == "event"
        assert set(arguments.figures) == {"fig7", "fig8", "fig9", "fig10"}

    def test_parser_rejects_bad_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figures", "fig99"])

    def test_parser_runtime_knobs(self):
        arguments = build_parser().parse_args(
            ["--engine", "compiled", "--backend", "multiprocess", "--jobs", "4"])
        assert arguments.engine == "compiled"
        assert arguments.backend == "multiprocess"
        assert arguments.jobs == 4
        defaults = build_parser().parse_args([])
        assert defaults.engine == "auto"
        assert defaults.backend is None  # falls back to $REPRO_BACKEND or serial
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "spice"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "cluster"])

    def test_main_engine_and_backend_flow(self, tmp_path):
        output = tmp_path / "report.txt"
        # --no-cache keeps the footer's backend label exact even when the
        # suite itself runs under $REPRO_CACHE_DIR (the CI cache leg).
        exit_code = main(["--scale", "0.05", "--simulator", "fast", "--engine", "compiled",
                          "--backend", "multiprocess", "--jobs", "2", "--no-cache",
                          "--figures", "fig10", "--output", str(output)])
        assert exit_code == 0
        text = output.read_text()
        assert "Fig. 10" in text
        expected = min(2, os.cpu_count() or 1)
        assert f"backend=planned[multiprocess[{expected}]]" in text
        assert "engine=compiled" in text

    def test_run_all_fig9_only(self):
        config = StudyConfig(characterization_length=120, training_length=120,
                             evaluation_length=100, seed=2, simulator="fast")
        report = run_all(config, ["fig9"])
        assert "Fig. 9" in report
        assert "Fig. 7" not in report
        assert "regenerated fig9" in report

    def test_run_all_fig10_reuses_characterization(self):
        config = StudyConfig(characterization_length=120, training_length=120,
                             evaluation_length=100, seed=2, simulator="fast")
        report = run_all(config, ["fig9", "fig10"])
        assert "Fig. 10" in report and "Fig. 9" in report

    def test_main_writes_output_file(self, tmp_path, monkeypatch):
        output = tmp_path / "report.txt"
        monkeypatch.setenv("REPRO_TRACE_SCALE", "1.0")
        exit_code = main(["--scale", "0.05", "--simulator", "fast",
                          "--figures", "fig9", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "Fig. 9" in output.read_text()

    def test_parser_cache_flags(self):
        arguments = build_parser().parse_args(["--cache-dir", "/tmp/c"])
        assert arguments.cache_dir == "/tmp/c"
        assert arguments.no_cache is False
        defaults = build_parser().parse_args([])
        assert defaults.cache_dir is None  # falls back to $REPRO_CACHE_DIR
        with pytest.raises(SystemExit):
            main(["--cache-dir", "/tmp/c", "--no-cache"])

    def test_main_warm_cache_run_is_bit_identical(self, tmp_path):
        """Acceptance: a warm cache reproduces the figures byte-identically
        with zero simulated jobs (all hits, no misses in the footer)."""
        cache_dir = tmp_path / "cache"
        cold_path, warm_path = tmp_path / "cold.txt", tmp_path / "warm.txt"
        base = ["--scale", "0.05", "--simulator", "fast",
                "--figures", "fig9", "fig10", "--cache-dir", str(cache_dir)]
        assert main(base + ["--output", str(cold_path)]) == 0
        # fresh shared-backend registry, as a new CLI process would have
        shutdown_backends()
        assert main(base + ["--output", str(warm_path)]) == 0
        shutdown_backends()
        cold, warm = cold_path.read_text(), warm_path.read_text()
        assert figure_sections(cold) == figure_sections(warm)
        assert "cache=0 hits / 12 misses" in cold
        assert "cache=12 hits / 0 misses" in warm

    def test_no_cache_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_SYNTH_CACHE", raising=False)
        output = tmp_path / "report.txt"
        assert main(["--scale", "0.05", "--simulator", "fast", "--figures", "fig9",
                     "--no-cache", "--output", str(output)]) == 0
        report = output.read_text()
        assert "cache=" not in report
        assert not (tmp_path / "cache").exists()
