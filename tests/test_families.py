"""Tests of the operator-family registry (repro.families).

The contract under test: the registry resolves families by id and by
entry (untagged adder entries included); every adder-path result of the
refactored consumers is bit-identical to the pre-registry hardcoded
paths — golden words, synthesized designs, and above all the cache
digests, which are pinned against pre-refactor hex values so existing
on-disk caches stay warm; and adder vs multiplier entries of equal
width never collide in either digest keyspace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import ExactAdder
from repro.core.isa import InexactSpeculativeAdder
from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry, exact_entry, isa_entry
from repro.families import (
    AdderFamily,
    FAMILIES,
    MultiplierFamily,
    family_ids,
    family_of,
    get_family,
    register_family,
)
from repro.families.base import OperatorFamily
from repro.families.multiplier import exact_multiplier_entry, multiplier_entry
from repro.runtime.cache import job_digest
from repro.runtime.jobs import CharacterizationJob, synthesize_entry
from repro.runtime.synth_cache import synth_digest
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.workloads.generators import uniform_workload

#: job/synth digests of two representative width-16 adder jobs, captured
#: on the commit *before* the family registry existed.  They pin the
#: no-silent-cache-invalidation guarantee: if any refactor moves them,
#: every existing on-disk result and synthesis cache goes cold.
PRE_REFACTOR_DIGESTS = {
    "exact": ("d037d5a01765b80b93c32dd51f11a7900276cd8603cc931fd496d515db432672",
              "e0f8ae6ffb2780b5870ca1eab812a3def6a2d2d641c5f6fbc25e97a0967bf59c"),
    "(8,0,0,4)": ("4c7d50608dafeb9c6c33ff30749c5213beeb55c001f07d08f1b9ee90d16a2539",
                  "02a8022b2ed4904d8bbe17aefeb02a4740d3e136bff341354bc0c615dcd1a85b"),
}


def pinned_job(entry, trace) -> CharacterizationJob:
    """The exact job shape the pre-refactor digests were captured with."""
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=(3e-10,),
                               simulator="fast", synthesis=SynthesisOptions(),
                               width=16)


class TestRegistry:
    def test_both_families_registered(self):
        assert family_ids() == ("adder", "multiplier")
        assert isinstance(get_family("adder"), AdderFamily)
        assert isinstance(get_family("multiplier"), MultiplierFamily)

    def test_unknown_family_raises(self):
        with pytest.raises(ConfigurationError, match="unknown operator family"):
            get_family("divider")

    def test_family_of_resolves_tagged_and_untagged_entries(self):
        assert isinstance(family_of(exact_entry(16)), AdderFamily)
        assert isinstance(family_of(isa_entry((8, 0, 0, 4), width=16)), AdderFamily)
        assert isinstance(family_of(exact_multiplier_entry(8)), MultiplierFamily)
        assert isinstance(family_of(multiplier_entry((2, 0, 0, 0), width=8)),
                          MultiplierFamily)

    def test_untagged_objects_default_to_adder(self):
        # Pre-registry pickles (e.g. cached jobs) have no family attr.
        class Legacy:
            pass
        assert isinstance(family_of(Legacy()), AdderFamily)

    def test_register_requires_family_id(self):
        class Anonymous(MultiplierFamily):
            family_id = ""
        with pytest.raises(ConfigurationError, match="family_id"):
            register_family(Anonymous())

    def test_register_last_wins_and_restores(self):
        original = FAMILIES["multiplier"]
        replacement = MultiplierFamily()
        try:
            assert register_family(replacement) is replacement
            assert get_family("multiplier") is replacement
        finally:
            register_family(original)

    def test_family_attr_is_not_a_dataclass_field(self):
        # The digest canonicaliser flattens dataclass *fields*; `family`
        # must stay invisible to it on both entry types.
        import dataclasses
        for entry in (exact_entry(16), exact_multiplier_entry(8)):
            assert "family" not in {f.name for f in dataclasses.fields(entry)}
        assert DesignEntry.family == "adder"
        assert exact_multiplier_entry(8).family == "multiplier"


class TestDigestStability:
    @pytest.fixture(scope="class")
    def trace(self):
        return uniform_workload(64, width=16, seed=123)

    @pytest.mark.parametrize("label,entry", [
        ("exact", exact_entry(16)),
        ("(8,0,0,4)", isa_entry((8, 0, 0, 4), width=16)),
    ])
    def test_adder_digests_are_byte_identical_to_pre_refactor(self, trace, label, entry):
        expected_job, expected_synth = PRE_REFACTOR_DIGESTS[label]
        assert job_digest(pinned_job(entry, trace)) == expected_job
        assert synth_digest(entry, 16, SynthesisOptions()) == expected_synth

    def test_equal_width_families_never_collide(self, trace):
        adder = exact_entry(16)
        multiplier = exact_multiplier_entry(16)
        options = SynthesisOptions()
        assert (job_digest(pinned_job(adder, trace))
                != job_digest(pinned_job(multiplier, trace)))
        assert (synth_digest(adder, 16, options)
                != synth_digest(multiplier, 16, options))

    def test_multiplier_digest_carries_the_family_axis(self, trace):
        # Distinct dataclass names already separate the payloads; the
        # family key doubles the guarantee and keys future families that
        # might reuse an entry type.
        job = pinned_job(exact_multiplier_entry(16), trace)
        assert job_digest(job) == job_digest(job)  # deterministic
        assert job_digest(job) not in {
            digest for pair in PRE_REFACTOR_DIGESTS.values() for digest in pair}


class TestAdderBitIdentity:
    """The adder family delegations against the hardcoded originals."""

    @pytest.fixture(scope="class")
    def operands(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 1 << 16, size=512, dtype=np.uint64)
        b = rng.integers(0, 1 << 16, size=512, dtype=np.uint64)
        return a, b

    def test_exact_words_match_exact_adder(self, operands):
        a, b = operands
        family = get_family("adder")
        assert np.array_equal(family.exact_words(16, a, b),
                              ExactAdder(16).add_many(a, b))

    def test_golden_words_match_isa_model(self, operands):
        a, b = operands
        family = get_family("adder")
        entry = isa_entry((8, 0, 0, 4), width=16)
        gold, stats = family.golden_words(entry, 16, a, b)
        assert stats is None
        assert np.array_equal(gold, InexactSpeculativeAdder(entry.config).add_many(a, b))
        gold2, stats2 = family.golden_words(entry, 16, a, b, collect_stats=True)
        expected, expected_stats = InexactSpeculativeAdder(
            entry.config).add_many_with_stats(a, b)
        assert np.array_equal(gold2, expected)
        assert stats2.cycles == expected_stats.cycles
        assert np.array_equal(stats2.fault_counts, expected_stats.fault_counts)
        assert np.array_equal(stats2.position_counts, expected_stats.position_counts)

    def test_exact_golden_copies_the_diamond(self, operands):
        a, b = operands
        family = get_family("adder")
        diamond = family.exact_words(16, a, b)
        gold, stats = family.golden_words(exact_entry(16), 16, a, b, diamond=diamond)
        assert stats is None
        assert np.array_equal(gold, diamond)
        assert gold is not diamond  # never alias gold to the diamond buffer

    def test_synthesize_entry_dispatch_matches_direct_flow(self):
        options = SynthesisOptions()
        via_registry = synthesize_entry(exact_entry(16), 16, options)
        direct = synthesize(exact_adder_netlist(16, options.adder_architecture), options)
        assert via_registry.netlist.gates == direct.netlist.gates
        assert via_registry.timing_report.critical_path_delay == \
            direct.timing_report.critical_path_delay
        entry = isa_entry((8, 0, 0, 4), width=16)
        via_registry = synthesize_entry(entry, 16, options)
        direct = synthesize(entry.config, options)
        assert via_registry.netlist.gates == direct.netlist.gates

    def test_result_width_and_safe_period(self):
        adder = get_family("adder")
        assert adder.result_width(16) == 17
        assert adder.safe_period(16) == pytest.approx(0.3e-9)
        assert adder.max_width == 62


class TestFamilyProtocol:
    def test_surrogate_features_contain_the_guarantee_column(self):
        for family_id in family_ids():
            family = get_family(family_id)
            names = tuple(family.surrogate_feature_names)
            assert "provably_exact" in names
            space = family.design_space(8)
            quadruples = np.array(space.quadruples()[:5], dtype=np.int64)
            features = family.surrogate_features(quadruples, 8)
            assert features.shape == (quadruples.shape[0], len(names))

    def test_design_space_duck_type(self):
        for family_id in family_ids():
            space = get_family(family_id).design_space(8)
            assert space.family == family_id
            assert space.size == len(space.quadruples())
            assert list(space.iter_quadruples()) == space.quadruples()
            selected = space.select(max_designs=5)
            assert len(selected) == 5
            entries = space.entries(max_designs=5)
            assert len(entries) == 6 and entries[-1].is_exact
            assert isinstance(space.describe(), str)

    def test_describe(self):
        assert "adder" in get_family("adder").describe()

    def test_feature_hooks_delegate_to_ml(self):
        from repro.ml.features import feature_names
        family = get_family("adder")
        assert family.feature_names(8) == feature_names(8)

    def test_base_is_abstract(self):
        with pytest.raises(TypeError):
            OperatorFamily()
