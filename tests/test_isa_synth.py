"""Tests for the gate-level ISA generator and its equivalence with the behavioural model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.circuit.validate import check_netlist
from repro.experiments.designs import PAPER_QUADRUPLES
from repro.synth.isa_synth import isa_adder
from repro.synth.optimize import optimize


def _netlist_words(netlist, a, b):
    return netlist.compute_words({"A": a, "B": b,
                                  "cin": np.zeros(a.shape[0], dtype=np.uint64)})


class TestEquivalenceWithBehaviouralModel:
    @pytest.mark.parametrize("quadruple", PAPER_QUADRUPLES)
    def test_all_paper_designs_match(self, quadruple, rng):
        config = ISAConfig.from_quadruple(quadruple)
        behavioural = InexactSpeculativeAdder(config)
        netlist = isa_adder(config)
        a = rng.integers(0, 2**32, 400, dtype=np.uint64)
        b = rng.integers(0, 2**32, 400, dtype=np.uint64)
        assert np.array_equal(_netlist_words(netlist, a, b), behavioural.add_many(a, b))

    @pytest.mark.parametrize("quadruple", [(8, 0, 0, 4), (16, 2, 1, 6), (16, 7, 0, 8)])
    def test_optimised_netlist_still_matches(self, quadruple, rng):
        config = ISAConfig.from_quadruple(quadruple)
        behavioural = InexactSpeculativeAdder(config)
        netlist = optimize(isa_adder(config))
        a = rng.integers(0, 2**32, 400, dtype=np.uint64)
        b = rng.integers(0, 2**32, 400, dtype=np.uint64)
        assert np.array_equal(_netlist_words(netlist, a, b), behavioural.add_many(a, b))

    def test_carry_in_is_honoured(self, rng):
        config = ISAConfig(width=16, block_size=8, spec_size=2, correction=1, reduction=2)
        behavioural = InexactSpeculativeAdder(config)
        netlist = isa_adder(config)
        a = rng.integers(0, 2**16, 100, dtype=np.uint64)
        b = rng.integers(0, 2**16, 100, dtype=np.uint64)
        cin = np.ones(100, dtype=np.uint64)
        gate_level = netlist.compute_words({"A": a, "B": b, "cin": cin})
        expected = np.array([behavioural.add(int(x), int(y), cin=1) for x, y in zip(a, b)],
                            dtype=np.uint64)
        assert np.array_equal(gate_level, expected)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_property_small_isa(self, a, b):
        config = ISAConfig(width=16, block_size=4, spec_size=2, correction=1, reduction=2)
        behavioural = InexactSpeculativeAdder(config)
        netlist = isa_adder(config)
        word = int(_netlist_words(netlist, np.array([a], dtype=np.uint64),
                                  np.array([b], dtype=np.uint64))[0])
        assert word == behavioural.add(a, b)


class TestStructureOfGeneratedNetlists:
    def test_output_width(self):
        netlist = isa_adder(ISAConfig.from_quadruple((8, 0, 0, 4)))
        assert len(netlist.buses["S"]) == 33

    def test_valid_after_optimisation(self):
        netlist = optimize(isa_adder(ISAConfig.from_quadruple((16, 2, 1, 6))))
        report = check_netlist(netlist)
        assert report.num_inputs == 65  # two 32-bit buses plus cin

    def test_speculation_guess_one_variant(self, rng):
        """The dual-direction compensation hardware (guess = 1) also matches the model."""
        config = ISAConfig(width=16, block_size=8, spec_size=2, correction=1, reduction=2,
                           speculate_on_propagate=1)
        behavioural = InexactSpeculativeAdder(config)
        netlist = isa_adder(config)
        a = rng.integers(0, 2**16, 300, dtype=np.uint64)
        b = rng.integers(0, 2**16, 300, dtype=np.uint64)
        assert np.array_equal(_netlist_words(netlist, a, b), behavioural.add_many(a, b))

    def test_sub_adder_architecture_choice(self, rng):
        config = ISAConfig.from_quadruple((8, 0, 0, 4))
        behavioural = InexactSpeculativeAdder(config)
        a = rng.integers(0, 2**32, 100, dtype=np.uint64)
        b = rng.integers(0, 2**32, 100, dtype=np.uint64)
        for architecture in ("ripple", "cla", "brent-kung"):
            netlist = isa_adder(config, sub_adder=architecture)
            assert np.array_equal(_netlist_words(netlist, a, b), behavioural.add_many(a, b))

    def test_larger_compensation_means_more_gates(self):
        small = isa_adder(ISAConfig.from_quadruple((8, 0, 0, 0))).num_gates
        large = isa_adder(ISAConfig.from_quadruple((8, 0, 1, 6))).num_gates
        assert large > small
