"""Tests for constant propagation and dead-logic removal (repro.synth.optimize)."""

import numpy as np
import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.circuit.validate import check_netlist
from repro.synth.adders import kogge_stone_adder
from repro.synth.optimize import optimize, propagate_constants, prune_unused
from repro.utils.vector import vector_override


def _truth_table(netlist, input_names):
    rows = {}
    count = len(input_names)
    for value in range(2 ** count):
        stimulus = {name: np.array([(value >> i) & 1]) for i, name in enumerate(input_names)}
        rows[value] = [int(np.asarray(out).ravel()[0]) for out in netlist.evaluate_outputs(stimulus)]
    return rows


class TestPropagateConstants:
    def test_and_with_constant_zero_folds(self):
        builder = NetlistBuilder("t")
        a = builder.input_bit("a")
        y = builder.and2(a, builder.zero)
        builder.output_bus("S", [builder.or2(y, a)])
        optimised = propagate_constants(builder.build())
        # The AND with 0 disappears and the OR simplifies to a wire to "a".
        assert optimised.num_gates == 0
        assert optimised.outputs == ["a"]

    def test_xor_with_constant_one_becomes_inverter(self):
        builder = NetlistBuilder("t")
        a = builder.input_bit("a")
        builder.output_bus("S", [builder.xor2(a, builder.one)])
        optimised = propagate_constants(builder.build())
        assert optimised.cell_histogram() == {"INV": 1}

    def test_mux_with_constant_select(self):
        builder = NetlistBuilder("t")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        builder.output_bus("S", [builder.mux2(a, b, builder.one)])
        optimised = propagate_constants(builder.build())
        assert optimised.num_gates == 0
        assert optimised.outputs == ["b"]

    def test_fully_constant_cone_maps_output_to_constant(self):
        builder = NetlistBuilder("t")
        builder.input_bit("a")
        builder.output_bus("S", [builder.and2(builder.one, builder.one)])
        optimised = propagate_constants(builder.build())
        assert optimised.outputs == ["const1"]

    @pytest.mark.parametrize("cell,inputs", [
        ("AND3", 3), ("OR3", 3), ("MAJ3", 3), ("AOI21", 3), ("OAI21", 3),
        ("NAND2", 2), ("NOR2", 2), ("XNOR2", 2), ("MUX2", 3),
    ])
    def test_function_preserved_with_constant_inputs(self, cell, inputs):
        """Tying any single input to a constant must preserve the boolean function."""
        for constant_position in range(inputs):
            for constant_value in (0, 1):
                builder = NetlistBuilder("t")
                nets, names = [], []
                for position in range(inputs):
                    if position == constant_position:
                        nets.append(builder.const(constant_value))
                    else:
                        name = f"x{position}"
                        nets.append(builder.input_bit(name))
                        names.append(name)
                builder.output_bus("S", [builder.gate(cell, *nets)])
                original = builder.build()
                optimised = propagate_constants(original)
                assert _truth_table(original, names) == _truth_table(optimised, names)


def _mux_with_constant_data(taken_net=None, taken_gate=None):
    """A MUX2 whose constant data input expands to an inverter named
    ``m_inv_1`` driving ``y_inv_1`` — with optional squatters on those
    names to force the collision path."""
    netlist = Netlist("t")
    netlist.add_input("a")
    netlist.add_input("s")
    if taken_net is not None:
        netlist.add_input(taken_net)
    if taken_gate is not None:
        netlist.add_gate(taken_gate, "INV", ["s"], f"{taken_gate}_out")
    # MUX2(a, 0, s) simplifies to AND2(a, NOT s): the inverter on the
    # select is minted during expansion.
    netlist.add_gate("m", "MUX2", ["a", "const0", "s"], "y")
    netlist.add_output("y")
    if taken_gate is not None:
        netlist.add_output(f"{taken_gate}_out")
    if taken_net is not None:
        netlist.add_output(taken_net)
    return netlist


class TestInverterExpansionNaming:
    @pytest.mark.parametrize("vector", [True, False])
    def test_net_name_collision_gets_fresh_name(self, vector):
        # A primary input already owns the natural inverter net name;
        # expansion must mint a different one instead of colliding.
        netlist = _mux_with_constant_data(taken_net="y_inv_1")
        with vector_override(vector):
            optimised = optimize(netlist)
        assert check_netlist(optimised).ok
        inverters = [g for g in optimised.gates if g.cell == "INV"]
        assert len(inverters) == 1
        assert inverters[0].output != "y_inv_1"
        original = _truth_table(netlist, ["a", "s", "y_inv_1"])
        assert original == _truth_table(optimised, ["a", "s", "y_inv_1"])

    @pytest.mark.parametrize("vector", [True, False])
    def test_gate_name_collision_gets_fresh_name(self, vector):
        # Another gate already owns the natural inverter gate name.
        netlist = _mux_with_constant_data(taken_gate="m_inv_1")
        with vector_override(vector):
            optimised = optimize(netlist)
        assert check_netlist(optimised).ok
        minted = [g for g in optimised.gates
                  if g.cell == "INV" and g.output != "m_inv_1_out"]
        assert len(minted) == 1
        assert minted[0].name != "m_inv_1"
        assert _truth_table(netlist, ["a", "s"]) == \
            _truth_table(optimised, ["a", "s"])

    @pytest.mark.parametrize("vector", [True, False])
    def test_collision_free_expansion_keeps_natural_names(self, vector):
        netlist = _mux_with_constant_data()
        with vector_override(vector):
            optimised = optimize(netlist)
        [inverter] = [g for g in optimised.gates if g.cell == "INV"]
        assert inverter.name == "m_inv_1"
        assert inverter.output == "y_inv_1"

    @pytest.mark.parametrize("vector", [True, False])
    def test_deep_alias_chain_resolves(self, vector):
        # A long chain of constant-simplified gates exercises the
        # path-compressed alias resolution.
        netlist = Netlist("t")
        netlist.add_input("a")
        previous = "a"
        for index in range(64):
            netlist.add_gate(f"g{index}", "AND2", [previous, "const1"],
                             f"n{index}")
            previous = f"n{index}"
        netlist.add_output(previous)
        with vector_override(vector):
            optimised = optimize(netlist)
        assert optimised.num_gates == 0
        assert optimised.outputs == ["a"]


class TestPruneUnused:
    def test_removes_dead_cone(self):
        builder = NetlistBuilder("t")
        a, b = builder.input_bit("a"), builder.input_bit("b")
        dead = builder.and2(a, b)
        builder.xor2(dead, a)  # dead cone, never observed
        builder.output_bus("S", [builder.or2(a, b)])
        pruned = prune_unused(builder.build())
        assert pruned.num_gates == 1
        assert check_netlist(pruned).ok

    def test_keeps_everything_reachable(self):
        netlist = kogge_stone_adder(8)
        assert prune_unused(netlist).num_gates == netlist.num_gates


class TestOptimize:
    def test_idempotent_on_clean_design(self):
        netlist = kogge_stone_adder(8)
        once = optimize(netlist)
        twice = optimize(once)
        assert twice.num_gates == once.num_gates

    def test_preserves_adder_function(self, rng):
        netlist = optimize(kogge_stone_adder(12))
        a = rng.integers(0, 2**12, 200, dtype=np.uint64)
        b = rng.integers(0, 2**12, 200, dtype=np.uint64)
        result = netlist.compute_words({"A": a, "B": b, "cin": np.zeros(200, dtype=np.uint64)})
        assert np.array_equal(result, a + b)
