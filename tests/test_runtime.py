"""Tests of the execution runtime: jobs, backends, chunking, determinism.

The backbone guarantee of the runtime is that the multiprocess backend
is *bit-identical* to the serial one at any worker count, for every
simulator tier and engine, including ragged traces whose transition
count does not divide the chunk size.  These tests pin that down on
small 16-bit designs so the suite stays fast.
"""

from __future__ import annotations

import os
import pickle
import warnings

import numpy as np
import pytest

from repro.circuit.compiled import WORD_BITS, transition_chunks
from repro.exceptions import ConfigurationError, SimulationError, WorkloadError
from repro.experiments.common import StudyConfig, characterize_design, characterize_designs
from repro.experiments.designs import exact_entry, isa_entry
from repro.ml.dataset import collect_bit_datasets
from repro.runtime import (
    BACKENDS,
    CharacterizationJob,
    MultiprocessBackend,
    SerialBackend,
    execute_job,
    get_backend,
    run_jobs,
)
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import uniform_workload

PERIODS = tuple(ClockPlan.paper().periods)


def small_job(length=200, quadruple=(4, 0, 0, 2), simulator="fast", engine="auto",
              seed=11, **kwargs):
    """A quick 16-bit characterization job for backend tests."""
    entry = exact_entry(16) if quadruple is None else isa_entry(quadruple, width=16)
    trace = uniform_workload(length, width=16, seed=seed)
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS,
                               simulator=simulator, engine=engine, width=16, **kwargs)


def assert_bit_identical(reference, candidate):
    """Every array of two characterisations matches exactly."""
    assert reference.name == candidate.name
    assert np.array_equal(reference.diamond_words, candidate.diamond_words)
    assert np.array_equal(reference.gold_words, candidate.gold_words)
    assert np.array_equal(reference.netlist_words, candidate.netlist_words)
    assert set(reference.timing_traces) == set(candidate.timing_traces)
    for clk, timing in reference.timing_traces.items():
        other = candidate.timing_traces[clk]
        assert np.array_equal(timing.sampled_words, other.sampled_words)
        assert np.array_equal(timing.settled_words, other.settled_words)
        assert timing.output_width == other.output_width


class TestTransitionChunks:
    def test_word_aligned_cover(self):
        spans = transition_chunks(200, 64)
        assert spans == [(0, 64), (64, 128), (128, 192), (192, 200)]

    def test_chunk_size_rounds_up_to_word(self):
        spans = transition_chunks(200, 65)
        assert spans[0] == (0, 128)
        assert spans[-1][1] == 200
        assert all(start % WORD_BITS == 0 for start, _ in spans)

    def test_single_chunk(self):
        assert transition_chunks(63, 1000) == [(0, 63)]

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            transition_chunks(0, 64)
        with pytest.raises(SimulationError):
            transition_chunks(10, 0)


class TestJobValidation:
    def test_bad_simulator(self):
        with pytest.raises(ConfigurationError):
            small_job(simulator="spice")

    def test_bad_engine(self):
        with pytest.raises(ConfigurationError):
            small_job(engine="verilog")

    def test_needs_clock_periods(self):
        entry = isa_entry((4, 0, 0, 2), width=16)
        trace = uniform_workload(32, width=16, seed=0)
        with pytest.raises(ConfigurationError):
            CharacterizationJob(entry=entry, trace=trace, clock_periods=(), width=16)
        with pytest.raises(ConfigurationError):
            CharacterizationJob(entry=entry, trace=trace, clock_periods=(-1.0,), width=16)

    def test_needs_two_vectors(self):
        entry = isa_entry((4, 0, 0, 2), width=16)
        trace = uniform_workload(16, width=16, seed=0).slice(0, 1)
        with pytest.raises(ConfigurationError):
            CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS, width=16)

    def test_unseeded_variation_rejected(self):
        from repro.synth.flow import SynthesisOptions
        with pytest.raises(ConfigurationError):
            small_job(synthesis=SynthesisOptions(variation_sigma=0.1))
        # a seeded draw synthesizes identically in every worker: accepted
        small_job(synthesis=SynthesisOptions(variation_sigma=0.1, variation_seed=3))

    def test_cache_key_ignores_trace(self):
        job = small_job(seed=1)
        assert job.cache_key() == job.with_trace(uniform_workload(64, width=16,
                                                                  seed=2)).cache_key()


class TestTraceSlicing:
    def test_slice_values(self):
        trace = uniform_workload(100, width=16, seed=3)
        chunk = trace.slice(10, 20)
        assert chunk.length == 10
        assert np.array_equal(chunk.a, trace.a[10:20])

    def test_slice_bounds_checked(self):
        trace = uniform_workload(16, width=16, seed=3)
        with pytest.raises(WorkloadError):
            trace.slice(4, 4)
        with pytest.raises(WorkloadError):
            trace.slice(0, 17)


class TestBackendDeterminism:
    """Serial and multiprocess results must match bit for bit."""

    @pytest.fixture(scope="class")
    def fast_job(self):
        # 200 vectors -> 199 transitions: ragged tail for any 64-aligned chunk.
        return small_job(length=200, collect_structural_stats=True)

    @pytest.fixture(scope="class")
    def serial_result(self, fast_job):
        return SerialBackend().run([fast_job])[0]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_sweep_bit_identical(self, fast_job, serial_result, workers):
        [result] = MultiprocessBackend(workers=workers,
                                       chunk_transitions=64).run([fast_job])
        assert_bit_identical(serial_result, result)
        assert result.structural_stats is not None
        assert np.array_equal(result.structural_stats.position_counts,
                              serial_result.structural_stats.position_counts)

    @pytest.mark.parametrize("length", [65, 130, 200])
    def test_ragged_trace_lengths(self, length):
        job = small_job(length=length, seed=length)
        serial = SerialBackend().run([job])[0]
        [parallel] = MultiprocessBackend(workers=2, chunk_transitions=64).run([job])
        assert_bit_identical(serial, parallel)

    def test_event_simulator_jobs(self):
        job = small_job(length=40, simulator="event")
        serial = SerialBackend().run([job])[0]
        [parallel] = MultiprocessBackend(workers=2, chunk_transitions=64).run([job])
        assert_bit_identical(serial, parallel)

    def test_reference_engine_jobs(self):
        job = small_job(length=96, engine="reference")
        serial = SerialBackend().run([job])[0]
        [parallel] = MultiprocessBackend(workers=2, chunk_transitions=64).run([job])
        assert_bit_identical(serial, parallel)

    def test_auto_engine_fallback_path(self, monkeypatch):
        # With the threshold-row budget forced to zero the packed timing
        # compiler always aborts, so engine="auto" falls back to the
        # dense reference path; backends must still agree bit for bit.
        # (Workers inherit the patch through fork; on platforms where
        # they do not, bit-exactness across engines keeps this valid.)
        from repro.circuit.compiled import PackedTimingProgram
        from repro.runtime.jobs import build_simulator, synthesize_job

        monkeypatch.setattr(PackedTimingProgram, "DEFAULT_ROWS_PER_GATE", 0)
        job = small_job(length=96, engine="auto")
        assert build_simulator("fast", synthesize_job(job),
                               engine="auto").engine == "reference"
        serial = SerialBackend().run([job])[0]
        [parallel] = MultiprocessBackend(workers=2, chunk_transitions=64).run([job])
        assert_bit_identical(serial, parallel)

    def test_batch_order_preserved(self):
        jobs = [small_job(length=80, quadruple=(4, 0, 0, 2)),
                small_job(length=80, quadruple=None),
                small_job(length=80, quadruple=(8, 2, 1, 2))]
        serial = SerialBackend().run(jobs)
        parallel = MultiprocessBackend(workers=2).run(jobs)
        assert [r.name for r in parallel] == [r.name for r in serial]
        for reference, candidate in zip(serial, parallel):
            assert_bit_identical(reference, candidate)


class TestBackendApi:
    def test_get_backend_names(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = get_backend("multiprocess", workers=3)
        expected = min(3, os.cpu_count() or 1)
        assert isinstance(backend, MultiprocessBackend)
        assert backend.workers == expected
        assert backend.describe() == f"multiprocess[{expected}]"
        assert get_backend(backend) is backend

    def test_worker_clamp_warns(self):
        cpus = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="clamping"):
            backend = MultiprocessBackend(workers=cpus + 1)
        assert backend.workers == cpus
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert MultiprocessBackend(workers=cpus).workers == cpus
            assert MultiprocessBackend().workers == cpus

    def test_get_backend_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            get_backend("gpu")
        assert set(BACKENDS) == {"serial", "multiprocess"}

    def test_invalid_worker_counts(self):
        with pytest.raises(ConfigurationError):
            MultiprocessBackend(workers=0)
        with pytest.raises(ConfigurationError):
            MultiprocessBackend(chunk_transitions=0)

    def test_empty_batch(self):
        assert MultiprocessBackend(workers=2).run([]) == []
        assert SerialBackend().run([]) == []

    def test_pool_persists_across_runs_and_closes(self):
        job = small_job(length=70)
        with MultiprocessBackend(workers=2) as backend:
            [first] = backend.run([job])
            pool = backend._pool
            assert pool is not None
            [second] = backend.run([job])
            assert backend._pool is pool  # warm pool reused between batches
            assert_bit_identical(first, second)
        assert backend._pool is None  # context exit shuts the pool down

    def test_run_jobs_convenience(self):
        job = small_job(length=70)
        [serial] = run_jobs([job])
        [parallel] = run_jobs([job], backend="multiprocess", workers=2)
        assert_bit_identical(serial, parallel)

    def test_run_jobs_backend_lifecycle(self):
        # A name-built backend is one-shot: its pool is closed on return.
        # A caller-supplied instance is left open for reuse.
        job = small_job(length=70)
        with MultiprocessBackend(workers=2) as backend:
            [first] = run_jobs([job], backend=backend)
            assert backend._pool is not None
            [second] = run_jobs([job], backend=backend)
            assert_bit_identical(first, second)

    def test_execute_job_matches_characterize_design(self):
        config = StudyConfig(characterization_length=120, training_length=120,
                             evaluation_length=100, seed=9, simulator="fast",
                             width=16, backend="serial")
        entry = isa_entry((4, 0, 0, 2), width=16)
        trace = config.characterization_trace()
        direct = execute_job(config.job(entry, trace))
        wrapped = characterize_design(entry, trace, config)
        assert_bit_identical(direct, wrapped)


class TestStudyConfigRuntimeKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_BACKEND", "REPRO_WORKERS", "REPRO_TRACE_SCALE"):
            monkeypatch.delenv(name, raising=False)
        config = StudyConfig()
        assert config.engine == "auto"
        assert config.backend == "serial"
        assert config.workers is None
        assert config.trace_scale == 1.0

    def test_env_read_once_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BACKEND", "multiprocess")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        config = StudyConfig(characterization_length=200)
        assert config.trace_scale == 0.5
        assert config.backend == "multiprocess"
        assert config.workers == 2
        assert config.characterization_trace().length == 100
        # mutating the environment after construction changes nothing
        monkeypatch.setenv("REPRO_TRACE_SCALE", "2.0")
        assert config.trace_scale == 0.5
        assert config.characterization_trace().length == 100

    def test_explicit_trace_scale_field(self):
        config = StudyConfig(characterization_length=400, trace_scale=0.25)
        assert config.characterization_trace().length == 100
        assert config.scaled_length(64) == 16

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(engine="fpga")
        with pytest.raises(ConfigurationError):
            StudyConfig(backend="cluster")
        with pytest.raises(ConfigurationError):
            StudyConfig(trace_scale=0.0)
        with pytest.raises(ConfigurationError):
            StudyConfig(workers=0)

    def test_config_backend_drives_characterization(self):
        config = StudyConfig(characterization_length=130, training_length=120,
                             evaluation_length=100, seed=4, simulator="fast", width=16,
                             backend="multiprocess", workers=2)
        entries = [isa_entry((4, 0, 0, 2), width=16), exact_entry(16)]
        trace = config.characterization_trace()
        parallel = characterize_designs(entries, trace, config)
        serial = characterize_designs(entries, trace,
                                      StudyConfig(characterization_length=130,
                                                  training_length=120,
                                                  evaluation_length=100, seed=4,
                                                  simulator="fast", width=16,
                                                  backend="serial"))
        for reference, candidate in zip(serial, parallel):
            assert_bit_identical(reference, candidate)


class TestDatasetCollection:
    def test_collect_bit_datasets_over_backends(self):
        job = small_job(length=100)
        [serial] = collect_bit_datasets([job])
        [parallel] = collect_bit_datasets([job], backend="multiprocess", workers=2)
        assert set(serial) == set(PERIODS)
        for clk in PERIODS:
            assert len(serial[clk]) == 17  # 16-bit adder -> 17 output bits
            for reference, candidate in zip(serial[clk], parallel[clk]):
                assert reference.bit == candidate.bit
                assert np.array_equal(reference.features, candidate.features)
                assert np.array_equal(reference.labels, candidate.labels)


class TestNetlistPickling:
    def test_round_trip_drops_caches_keeps_behaviour(self, synthesized_small_isa):
        netlist = synthesized_small_isa.netlist
        assert netlist.compiled() is not None  # warm the cache
        clone = pickle.loads(pickle.dumps(netlist))
        assert clone._compiled_cache is None
        trace = uniform_workload(70, width=16, seed=21)
        operands = trace.as_operands()
        assert np.array_equal(netlist.compute_words(operands),
                              clone.compute_words(operands))
