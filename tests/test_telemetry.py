"""Integration tests of runtime telemetry across the job pipeline.

The contract: worker-side phases recorded under the multiprocess
backend are merged back into the driver's ``--timings`` breakdown (with
the driver's blocked time reported as ``schedule.wait``); run manifests
are written by ``run_jobs``/``run_sweep``/the CLIs with nested sessions
suppressed to one record per run; and — the regression that matters —
enabling telemetry changes **zero result bytes**: characterizations,
sweep points and cache-entry payloads are bit-identical with tracing on
or off.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.explore.cli import main as explore_main
from repro.explore.space import DesignSpace
from repro.explore.sweep import SweepSpec, run_sweep, sweep_clock_plan
from repro.obs import load_manifests, telemetry_run
from repro.obs.stats_cli import main as stats_main
from repro.runtime import (
    CharacterizationJob,
    MultiprocessBackend,
    SerialBackend,
    job_digest,
    run_jobs,
)
from repro.experiments.designs import exact_entry, isa_entry
from repro.timing.clocking import ClockPlan
from repro.utils.phases import collect_phases
from repro.workloads.generators import WorkloadSpec, uniform_workload

PERIODS = tuple(ClockPlan.paper().periods)


@pytest.fixture(autouse=True)
def _isolated_telemetry_env(monkeypatch):
    """Shield these tests from a suite-wide $REPRO_TELEMETRY_DIR (CI leg)."""
    from repro.obs.manifest import TELEMETRY_ENV
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)


def assert_bit_identical(reference, candidate):
    assert reference.name == candidate.name
    assert np.array_equal(reference.diamond_words, candidate.diamond_words)
    assert np.array_equal(reference.gold_words, candidate.gold_words)
    assert np.array_equal(reference.netlist_words, candidate.netlist_words)
    assert set(reference.timing_traces) == set(candidate.timing_traces)
    for clk, timing in reference.timing_traces.items():
        other = candidate.timing_traces[clk]
        assert np.array_equal(timing.sampled_words, other.sampled_words)
        assert np.array_equal(timing.settled_words, other.settled_words)


def make_job(quadruple=(4, 0, 0, 2), length=96, seed=11, **kwargs):
    entry = exact_entry(16) if quadruple is None else isa_entry(quadruple, width=16)
    trace = uniform_workload(length, width=16, seed=seed)
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS,
                               simulator="fast", width=16, **kwargs)


def small_jobs():
    return [make_job((4, 0, 0, 2), seed=11), make_job((8, 0, 0, 4), seed=12)]


def small_spec(max_designs=3, length=64) -> SweepSpec:
    entries = DesignSpace(width=16).entries(max_designs=max_designs)
    return SweepSpec(entries=tuple(entries),
                     clock_plan=sweep_clock_plan((0.0, 0.10)),
                     workloads=(WorkloadSpec("uniform", length, width=16, seed=11),),
                     width=16)


def multiprocess_pool(workers=2):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return MultiprocessBackend(workers=workers)


class TestTimingsMerge:
    def test_worker_phases_merged_into_timings(self):
        jobs = small_jobs()
        with collect_phases() as serial_phases:
            serial = run_jobs(jobs, backend="serial", plan=False)
        pool = multiprocess_pool()
        try:
            with collect_phases() as mp_phases:
                multiprocess = run_jobs(jobs, backend=pool, plan=False)
        finally:
            pool.close()
        for reference, candidate in zip(serial, multiprocess):
            assert_bit_identical(reference, candidate)
        # The worker's simulate phases (golden + timing per job) travelled
        # back through the spill files: same call counts as serial.
        assert mp_phases.calls["simulate"] == serial_phases.calls["simulate"]
        assert serial_phases.calls["simulate"] == 2 * len(jobs)
        # The driver's blocked-on-workers time is reported separately and
        # only under the multiprocess backend.
        assert "schedule.wait" in mp_phases.seconds
        assert "schedule.wait" not in serial_phases.seconds
        # Per-worker records were folded into the collector's tracer.
        assert mp_phases.tracer.workers
        worker = next(iter(mp_phases.tracer.workers.values()))
        assert worker["tasks"] >= 1
        assert worker["busy_s"] > 0.0

    def test_planned_multiprocess_merges_worker_phases(self):
        spec = small_spec()
        with collect_phases() as phases:
            pool = multiprocess_pool()
            try:
                result = run_sweep(spec, backend=pool)
            finally:
                pool.close()
        assert result.points
        assert phases.calls.get("simulate", 0) > 0
        assert "schedule.wait" in phases.seconds
        assert phases.tracer.workers


class TestBitIdentity:
    def test_results_identical_with_telemetry_on(self, tmp_path):
        jobs = small_jobs()
        baseline = run_jobs(jobs, backend="serial")
        with telemetry_run(tmp_path / "telemetry", command="test"):
            observed = run_jobs(jobs, backend="serial")
        for reference, candidate in zip(baseline, observed):
            assert_bit_identical(reference, candidate)
        assert [job_digest(job) for job in jobs] == \
            [job_digest(job) for job in jobs]

    def test_sweep_points_identical_with_telemetry_on(self, tmp_path):
        spec = small_spec(max_designs=2)
        baseline = run_sweep(spec)
        observed = run_sweep(spec, telemetry_dir=str(tmp_path / "telemetry"))
        assert baseline.points == observed.points

    def test_cache_entry_bytes_identical_with_telemetry_on(self, tmp_path):
        jobs = small_jobs()
        run_jobs(jobs, backend="serial", cache_dir=str(tmp_path / "plain"))
        run_jobs(jobs, backend="serial", cache_dir=str(tmp_path / "traced"),
                 telemetry_dir=str(tmp_path / "telemetry"))

        def payload_bytes(root: Path) -> dict:
            return {path.relative_to(root): path.read_bytes()
                    for path in sorted(root.rglob("*.pkl"))}

        plain = payload_bytes(tmp_path / "plain")
        traced = payload_bytes(tmp_path / "traced")
        assert plain.keys() == traced.keys()
        assert plain
        for key in plain:
            assert plain[key] == traced[key], key


class TestManifests:
    def test_run_jobs_writes_manifest(self, tmp_path):
        jobs = small_jobs()
        run_jobs(jobs, backend="serial", telemetry_dir=str(tmp_path))
        [manifest] = load_manifests(tmp_path)
        assert manifest["command"] == "run_jobs"
        assert manifest["config"]["jobs"] == len(jobs)
        for phase_name in ("synthesize", "lower", "simulate"):
            assert manifest["phases"][phase_name]["calls"] > 0
        assert manifest["metrics"]["counters"]["jobs.simulated"] == len(jobs)
        assert manifest["workers"] == {}

    def test_multiprocess_sweep_manifest_accounts_for_wall(self, tmp_path):
        spec = small_spec()
        pool = multiprocess_pool()
        try:
            run_sweep(spec, backend=pool, telemetry_dir=str(tmp_path))
        finally:
            pool.close()
        [manifest] = load_manifests(tmp_path)
        assert manifest["command"] == "run_sweep"
        assert manifest["workers"], "expected per-worker spill records"
        for worker in manifest["workers"].values():
            assert worker["tasks"] >= 1
            assert worker["busy_s"] > 0.0
        assert manifest["metrics"]["counters"]["jobs.simulated"] > 0
        # Driver phases + merged worker phases + scheduling wait should
        # account for (nearly) the whole elapsed wall.
        assert manifest["accounted_fraction"] > 0.9
        assert "simulate" in manifest["phases"]
        assert "schedule.wait" in manifest["phases"]

    def test_nested_sessions_write_one_manifest(self, tmp_path):
        spec = small_spec(max_designs=2)
        with telemetry_run(tmp_path, command="outer"):
            run_sweep(spec, telemetry_dir=str(tmp_path))
        manifests = load_manifests(tmp_path)
        assert [m["command"] for m in manifests] == ["outer"]
        assert manifests[0]["phases"]["simulate"]["calls"] > 0

    def test_cache_counters_land_in_manifests(self, tmp_path):
        jobs = small_jobs()
        cache = str(tmp_path / "cache")
        run_jobs(jobs, backend="serial", cache_dir=cache,
                 telemetry_dir=str(tmp_path / "cold"))
        run_jobs(jobs, backend="serial", cache_dir=cache,
                 telemetry_dir=str(tmp_path / "warm"))
        [cold] = load_manifests(tmp_path / "cold")
        [warm] = load_manifests(tmp_path / "warm")
        assert cold["metrics"]["counters"]["cache.misses"] == len(jobs)
        assert "cache.hits" not in cold["metrics"]["counters"]
        assert warm["metrics"]["counters"]["cache.hits"] == len(jobs)
        assert "cache.misses" not in warm["metrics"]["counters"]


class TestCliIntegration:
    EXPLORE_ARGS = ["--width", "8", "--max-designs", "2", "--length", "48",
                    "--seed", "7"]

    def test_explore_json_embeds_manifest(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        assert explore_main(self.EXPLORE_ARGS +
                            ["--json", "--telemetry-dir", str(telemetry)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["width"] == 8
        assert payload["frontier"]
        for row in payload["frontier"]:
            assert {"rank", "design", "cpr", "rms_re"} <= row.keys()
        assert payload["manifest"]["command"] == "repro-explore"
        # The same manifest also landed in the telemetry directory.
        [on_disk] = load_manifests(telemetry)
        assert on_disk == payload["manifest"]

    def test_explore_json_without_telemetry_dir(self, capsys):
        assert explore_main(self.EXPLORE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frontier"]
        assert payload["manifest"]["command"] == "repro-explore"

    def test_explore_text_output_unchanged_by_telemetry(self, tmp_path, capsys):
        assert explore_main(self.EXPLORE_ARGS) == 0
        plain = capsys.readouterr().out
        assert explore_main(self.EXPLORE_ARGS +
                            ["--telemetry-dir", str(tmp_path)]) == 0
        traced = capsys.readouterr().out
        assert plain == traced

    def test_stats_cli_renders_real_runs(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        cache = tmp_path / "cache"
        jobs = small_jobs()
        for _ in range(2):  # cold (all misses) then warm (all hits)
            run_jobs(jobs, backend="serial", cache_dir=str(cache),
                     telemetry_dir=str(telemetry))
        pool = multiprocess_pool()
        try:  # uncached, so the jobs actually reach the workers
            run_jobs(jobs, backend=pool, plan=False,
                     telemetry_dir=str(telemetry))
        finally:
            pool.close()
        assert stats_main([str(telemetry), "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "3 run(s)" in out
        assert "Slowest phases" in out
        assert "hit-rate trend" in out
        assert "Worker utilisation" in out
        assert "entries" in out
