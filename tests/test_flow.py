"""Tests for the end-to-end synthesis flow (repro.synth.flow)."""

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.exceptions import SynthesisError
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.timing.clocking import PAPER_SAFE_PERIOD


class TestSynthesisOptions:
    def test_defaults_reproduce_paper_setup(self):
        options = SynthesisOptions()
        assert options.clock_constraint == pytest.approx(PAPER_SAFE_PERIOD)
        assert options.enable_sizing and options.enable_optimization

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisOptions(adder_architecture="magic")

    def test_resolved_library(self):
        assert SynthesisOptions().resolved_library().name == "synthetic65"


class TestSynthesizeIsa:
    def test_isa_design(self, synthesized_small_isa, small_isa_config):
        design = synthesized_small_isa
        assert design.config == small_isa_config
        assert not design.is_exact
        assert design.netlist_report.ok
        assert design.critical_path_delay > 0
        assert design.sizing_result is not None
        assert "critical path" in design.describe()

    def test_exact_netlist_design(self, synthesized_exact16):
        assert synthesized_exact16.is_exact
        assert synthesized_exact16.config is None
        assert synthesized_exact16.name == "exact"

    def test_exact_isa_config_uses_exact_netlist(self):
        design = synthesize(ISAConfig.exact(16))
        assert design.is_exact
        assert design.name == "exact"

    def test_sizing_can_be_disabled(self, small_isa_config):
        unsized = synthesize(small_isa_config, SynthesisOptions(enable_sizing=False))
        sized = synthesize(small_isa_config, SynthesisOptions(enable_sizing=True))
        assert unsized.sizing_result is None
        assert sized.critical_path_delay >= unsized.critical_path_delay

    def test_meets_paper_constraint_for_shallow_isa(self):
        design = synthesize(ISAConfig.from_quadruple((8, 0, 0, 4)))
        assert design.critical_path_delay <= PAPER_SAFE_PERIOD + 1e-15

    def test_functionality_preserved_through_flow(self, rng):
        config = ISAConfig.from_quadruple((16, 2, 1, 6))
        design = synthesize(config)
        behavioural = InexactSpeculativeAdder(config)
        a = rng.integers(0, 2**32, 200, dtype=np.uint64)
        b = rng.integers(0, 2**32, 200, dtype=np.uint64)
        gate_level = design.netlist.compute_words(
            {"A": a, "B": b, "cin": np.zeros(200, dtype=np.uint64)})
        assert np.array_equal(gate_level, behavioural.add_many(a, b))

    def test_process_variation_changes_delays(self, small_isa_config):
        base = synthesize(small_isa_config)
        varied = synthesize(small_isa_config,
                            SynthesisOptions(variation_sigma=0.05, variation_seed=1))
        base_total = base.annotation.total_delay()
        varied_total = varied.annotation.total_delay()
        assert varied_total != pytest.approx(base_total)

    def test_unsupported_design_object(self):
        with pytest.raises(SynthesisError):
            synthesize("not a design")


class TestExactAdderNetlist:
    def test_architectures(self):
        for architecture in ("kogge-stone", "cla", "brent-kung", "ripple"):
            netlist = exact_adder_netlist(8, architecture)
            assert netlist.name == "exact"
            assert len(netlist.buses["S"]) == 9

    def test_unknown_architecture(self):
        with pytest.raises(SynthesisError):
            exact_adder_netlist(8, "magic")

    def test_exact_adder_marginal_at_paper_constraint(self):
        """The 32-bit exact adder barely misses/meets 3.3 GHz — the paper's motivation."""
        design = synthesize(exact_adder_netlist(32))
        assert design.critical_path_delay >= 0.95 * PAPER_SAFE_PERIOD
        assert design.critical_path_delay <= 1.15 * PAPER_SAFE_PERIOD
