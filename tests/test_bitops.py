"""Unit tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.utils import bitops


class TestMask:
    def test_zero_width(self):
        assert bitops.mask(0) == 0

    def test_small_widths(self):
        assert bitops.mask(1) == 1
        assert bitops.mask(4) == 0xF
        assert bitops.mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.mask(-1)


class TestBitField:
    def test_extract_scalar(self):
        assert bitops.bit_field(0b1011_0110, 2, 4) == 0b1101

    def test_extract_array(self):
        values = np.array([0b1111, 0b1010], dtype=np.uint64)
        field = bitops.bit_field(values, 1, 2)
        assert field.tolist() == [0b11, 0b01]

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.bit_field(5, -1, 2)

    def test_set_field_scalar(self):
        assert bitops.set_bit_field(0b0000_0000, 2, 3, 0b101) == 0b0001_0100

    def test_set_field_array(self):
        values = np.array([0, 0xFF], dtype=np.uint64)
        updated = bitops.set_bit_field(values, 4, 4, 0b1010)
        assert updated.tolist() == [0xA0, 0xAF]

    def test_extract_bit(self):
        assert bitops.extract_bit(0b100, 2) == 1
        assert bitops.extract_bit(0b100, 1) == 0

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=28),
           st.integers(min_value=1, max_value=8))
    def test_roundtrip_property(self, value, offset, width):
        field = bitops.bit_field(value, offset, width)
        rebuilt = bitops.set_bit_field(value, offset, width, field)
        assert rebuilt == value


class TestSaturateField:
    def test_saturate_up(self):
        assert bitops.saturate_field(0b0000_0000, 4, 3, +1) == 0b0111_0000

    def test_saturate_down(self):
        assert bitops.saturate_field(0b0111_0000, 4, 3, -1) == 0

    def test_zero_direction_is_identity(self):
        assert bitops.saturate_field(0b1010, 0, 4, 0) == 0b1010


class TestIntBitsConversion:
    def test_int_to_bits_lsb_first(self):
        assert bitops.int_to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_bits_to_int(self):
        assert bitops.bits_to_int([1, 0, 1, 1]) == 0b1101

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            bitops.bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert bitops.bits_to_int(bitops.int_to_bits(value, 16)) == value


class TestExtractBitsMatrix:
    def test_shape_and_values(self):
        matrix = bitops.extract_bits_matrix(np.array([0b0110, 0b1001], dtype=np.uint64), 4)
        assert matrix.shape == (2, 4)
        assert matrix[0].tolist() == [0, 1, 1, 0]
        assert matrix[1].tolist() == [1, 0, 0, 1]


class TestErrorPositions:
    def test_signed_magnitude_position(self):
        assert bitops.signed_magnitude_position(1) == 0
        assert bitops.signed_magnitude_position(-8) == 3
        assert bitops.signed_magnitude_position(255) == 7

    def test_zero_error_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.signed_magnitude_position(0)

    def test_bit_length(self):
        assert bitops.bit_length_of(0) == 0
        assert bitops.bit_length_of(-16) == 5


class TestPopcountHamming:
    def test_popcount_scalar(self):
        assert bitops.popcount(0b1011) == 3

    def test_popcount_array(self):
        values = np.array([0, 0xFF, 0b101], dtype=np.uint64)
        assert bitops.popcount(values).tolist() == [0, 8, 2]

    def test_hamming_distance(self):
        assert bitops.hamming_distance(0b1100, 0b1010) == 2

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_hamming_distance_to_self_is_zero(self, value):
        assert bitops.hamming_distance(value, value) == 0


class TestChunks:
    def test_even_chunks(self):
        assert list(bitops.chunks([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_trailing_chunk(self):
        assert list(bitops.chunks([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            list(bitops.chunks([1], 0))
