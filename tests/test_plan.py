"""Tests of the execution planner: grouping, batching, bit-identity.

The planner's contract is that batched execution is **bit-identical** to
per-job execution on every backend — grouped multi-trace evaluation,
clock-specialised lowering and interned traces included — and that
whatever cannot batch (event-tier jobs, single-job groups) passes
through to the wrapped backend untouched.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.circuit.compiled import PackedTimingProgram
from repro.exceptions import ConfigurationError, SimulationError
from repro.runtime import (
    CachingBackend,
    CharacterizationJob,
    GoldenTask,
    MultiprocessBackend,
    PlannedBackend,
    SerialBackend,
    TimingChunkTask,
    execute_group,
    run_jobs,
)
from repro.experiments.designs import exact_entry, isa_entry
from repro.timing.clocking import ClockPlan
from repro.timing.fast_sim import FastTimingSimulator
from repro.utils.phases import collect_phases, phase
from repro.workloads.generators import uniform_workload

PERIODS = tuple(ClockPlan.paper().periods)


def make_job(quadruple=(4, 0, 0, 2), trace=None, length=200, seed=11,
             simulator="fast", **kwargs):
    entry = exact_entry(16) if quadruple is None else isa_entry(quadruple, width=16)
    if trace is None:
        trace = uniform_workload(length, width=16, seed=seed)
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS,
                               simulator=simulator, width=16, **kwargs)


def sweep_batch():
    """Two designs x three ragged traces, plus an event job and a stats job."""
    traces = [uniform_workload(length, width=16, seed=seed)
              for length, seed in ((200, 1), (131, 2), (64, 3))]
    jobs = []
    for quadruple in ((4, 0, 0, 2), (8, 0, 0, 4), None):
        for trace in traces:
            jobs.append(make_job(quadruple=quadruple, trace=trace))
    jobs.append(make_job(trace=traces[2], simulator="event"))
    jobs.append(make_job(quadruple=(8, 0, 0, 4), trace=traces[0],
                         collect_structural_stats=True))
    return jobs


def assert_bit_identical(reference, candidate):
    assert reference.name == candidate.name
    assert np.array_equal(reference.diamond_words, candidate.diamond_words)
    assert np.array_equal(reference.gold_words, candidate.gold_words)
    assert np.array_equal(reference.netlist_words, candidate.netlist_words)
    assert set(reference.timing_traces) == set(candidate.timing_traces)
    for clk, timing in reference.timing_traces.items():
        other = candidate.timing_traces[clk]
        assert np.array_equal(timing.sampled_words, other.sampled_words)
        assert np.array_equal(timing.settled_words, other.settled_words)
        assert timing.output_width == other.output_width
    assert ((reference.structural_stats is None)
            == (candidate.structural_stats is None))


class CountingSerial(SerialBackend):
    """Serial backend counting the whole jobs and tasks that reach it."""

    def __init__(self):
        self.jobs_run = 0
        self.tasks_run = 0

    def run(self, jobs):
        jobs = list(jobs)
        self.jobs_run += len(jobs)
        return super().run(jobs)

    def run_tasks(self, tasks):
        tasks = list(tasks)
        self.tasks_run += len(tasks)
        return super().run_tasks(tasks)


class TestPlannedBitIdentity:
    def test_planned_serial_identical(self):
        jobs = sweep_batch()
        reference = run_jobs(jobs, plan=False)
        planned = run_jobs(jobs, plan=True)
        for want, got in zip(reference, planned):
            assert_bit_identical(want, got)

    def test_planned_multiprocess_identical(self):
        jobs = sweep_batch()
        reference = run_jobs(jobs, plan=False)
        planned = run_jobs(jobs, backend="multiprocess", workers=2, plan=True)
        for want, got in zip(reference, planned):
            assert_bit_identical(want, got)
        # the parent restores the original trace objects on group results
        for job, got in zip(jobs, planned):
            assert got.trace is job.trace

    def test_planned_cached_identical_and_warm_zero_jobs(self, tmp_path):
        jobs = sweep_batch()
        reference = run_jobs(jobs, plan=False)
        inner = CountingSerial()
        cache = CachingBackend(PlannedBackend(inner), tmp_path)
        cold = cache.run(jobs)
        for want, got in zip(reference, cold):
            assert_bit_identical(want, got)
        assert cache.stats.misses == len(jobs)
        # batched groups execute inside the planner; the inner backend
        # only sees the pass-through (event-tier) job
        executed_cold = inner.jobs_run + inner.tasks_run
        assert executed_cold == 1
        warm = cache.run(jobs)
        for want, got in zip(reference, warm):
            assert_bit_identical(want, got)
        assert inner.jobs_run + inner.tasks_run == executed_cold  # zero on warm
        assert cache.stats.hits == len(jobs)

    def test_same_design_two_clock_plans_stay_separate(self):
        trace = uniform_workload(100, width=16, seed=5)
        other = uniform_workload(90, width=16, seed=6)
        jobs = []
        for periods in (PERIODS, PERIODS[:1]):
            for tr in (trace, other):
                jobs.append(CharacterizationJob(
                    entry=isa_entry((4, 0, 0, 2), width=16), trace=tr,
                    clock_periods=periods, simulator="fast", width=16))
        reference = run_jobs(jobs, plan=False)
        planned = run_jobs(jobs, plan=True)
        for want, got in zip(reference, planned):
            assert_bit_identical(want, got)


class TestPlannedScheduling:
    def test_single_job_batch_passes_through(self):
        inner = CountingSerial()
        planned = PlannedBackend(inner)
        job = make_job()
        [result] = planned.run([job])
        assert inner.jobs_run == 1  # no grouping, inner saw the whole batch
        assert_bit_identical(SerialBackend().run([job])[0], result)

    def test_single_design_batch_groups(self):
        inner = CountingSerial()
        planned = PlannedBackend(inner)
        trace_a = uniform_workload(100, width=16, seed=7)
        trace_b = uniform_workload(100, width=16, seed=8)
        jobs = [make_job(trace=trace_a), make_job(trace=trace_b)]
        results = planned.run(jobs)
        assert inner.jobs_run == 0  # the group ran batched, in-process
        for want, got in zip(SerialBackend().run(jobs), results):
            assert_bit_identical(want, got)

    def test_event_jobs_pass_through(self):
        inner = CountingSerial()
        planned = PlannedBackend(inner)
        trace = uniform_workload(64, width=16, seed=9)
        jobs = [make_job(trace=trace, simulator="event", length=64),
                make_job(trace=trace, simulator="event", length=64)]
        planned.run(jobs)
        assert inner.jobs_run == 2

    def test_min_group_size_validation(self):
        with pytest.raises(ConfigurationError):
            PlannedBackend(SerialBackend(), min_group_size=1)

    def test_run_jobs_keeps_caller_supplied_cache_in_the_loop(self, tmp_path):
        """run_jobs must not wrap a caller's caching stack in a planner.

        A planner *above* the cache would execute grouped jobs in-process
        and route them around the cache entirely.
        """
        traces = [uniform_workload(100, width=16, seed=seed) for seed in (31, 32)]
        jobs = [make_job(trace=trace) for trace in traces]
        caching = CachingBackend(PlannedBackend(SerialBackend()), tmp_path)
        run_jobs(jobs, backend=caching)  # plan=True default
        assert caching.stats.misses == len(jobs)
        run_jobs(jobs, backend=caching)
        assert caching.stats.hits == len(jobs)

    def test_describe(self):
        assert PlannedBackend(SerialBackend()).describe() == "planned[serial]"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = PlannedBackend(MultiprocessBackend(workers=2))
        expected = min(2, os.cpu_count() or 1)
        try:
            assert backend.describe() == f"planned[multiprocess[{expected}]]"
        finally:
            backend.close()

    def test_run_tasks_batches_timing_chunks(self):
        job = make_job(length=200)
        tasks = [GoldenTask(job)]
        for start, stop in ((0, 64), (64, 128), (128, 199)):
            tasks.append(TimingChunkTask(job.with_trace(job.trace.slice(start, stop + 1))))
        reference = SerialBackend().run_tasks(tasks)
        inner = CountingSerial()
        planned = PlannedBackend(inner)
        results = planned.run_tasks(tasks)
        assert inner.tasks_run == 1  # only the golden task passed through
        # golden tuples agree
        want, got = reference[0], results[0]
        for index in (1, 2, 4):
            assert np.array_equal(want[index], got[index])
        # timing chunks agree per clock
        for want, got in zip(reference[1:], results[1:]):
            assert set(want) == set(got)
            for clk in want:
                assert np.array_equal(want[clk].sampled_words, got[clk].sampled_words)
                assert np.array_equal(want[clk].settled_words, got[clk].settled_words)

    def test_subdivide_restores_pool_parallelism(self):
        """Few large groups split until the pool has one task per worker."""
        groups = PlannedBackend._subdivide([[0, 1, 2, 3, 4, 5, 6, 7]], 4)
        assert len(groups) == 4
        assert sorted(index for group in groups for index in group) == list(range(8))
        groups = PlannedBackend._subdivide([[0, 1], [2, 3, 4, 5]], 3)
        assert len(groups) == 3
        # nothing left to split: single-job groups stay whole
        assert PlannedBackend._subdivide([[0]], 8) == [[0]]

    def test_single_design_many_traces_multiprocess_identical(self):
        """One design x many traces splits across the pool bit-identically."""
        traces = [uniform_workload(100, width=16, seed=seed) for seed in range(6)]
        jobs = [make_job(trace=trace) for trace in traces]
        want = SerialBackend().run(jobs)
        backend = PlannedBackend(MultiprocessBackend(workers=3))
        try:
            got = backend.run(jobs)
        finally:
            backend.close()
        for reference, candidate in zip(want, got):
            assert_bit_identical(reference, candidate)

    def test_run_tasks_all_passthrough(self):
        job = make_job(length=80)
        tasks = [GoldenTask(job), TimingChunkTask(job)]
        inner = CountingSerial()
        planned = PlannedBackend(inner, min_group_size=3)
        planned.run_tasks(tasks)
        assert inner.tasks_run == 2


class TestExecuteGroup:
    def test_structural_stats_match_per_job(self):
        trace = uniform_workload(150, width=16, seed=13)
        jobs = [make_job(quadruple=(8, 0, 0, 4), trace=trace,
                         collect_structural_stats=True),
                make_job(quadruple=(8, 0, 0, 4), length=90, seed=14)]
        [want_stats, want_plain] = SerialBackend().run(jobs)
        [got_stats, got_plain] = execute_group(jobs)
        assert_bit_identical(want_stats, got_stats)
        assert_bit_identical(want_plain, got_plain)
        assert got_stats.structural_stats.cycles == want_stats.structural_stats.cycles
        assert np.array_equal(got_stats.structural_stats.position_counts,
                              want_stats.structural_stats.position_counts)

    def test_exact_entry_group(self):
        jobs = [make_job(quadruple=None, length=100, seed=15),
                make_job(quadruple=None, length=70, seed=16)]
        for want, got in zip(SerialBackend().run(jobs), execute_group(jobs)):
            assert_bit_identical(want, got)


class TestClockSpecialisedSimulator:
    def test_other_clock_raises(self):
        job = make_job()
        from repro.runtime import synthesize_job
        design = synthesize_job(job)
        simulator = FastTimingSimulator(design.netlist, design.annotation,
                                        engine="compiled", clock_periods=PERIODS)
        operands = job.trace.as_operands()
        specialised = simulator.run_trace_multi(operands, list(PERIODS))
        general = FastTimingSimulator(design.netlist, design.annotation,
                                      engine="compiled")
        reference = general.run_trace_multi(operands, list(PERIODS))
        for clk in PERIODS:
            assert np.array_equal(specialised[clk].sampled_words,
                                  reference[clk].sampled_words)
        with pytest.raises(SimulationError):
            simulator.run_trace_multi(operands, [min(PERIODS) * 0.5])

    def test_specialised_program_is_smaller(self):
        job = make_job(quadruple=(8, 0, 0, 4))
        from repro.runtime import synthesize_job
        design = synthesize_job(job)
        program = design.netlist.compiled()
        full = PackedTimingProgram(program, design.annotation)
        specialised = PackedTimingProgram(program, design.annotation,
                                          clock_periods=PERIODS)
        assert specialised.num_rows < full.num_rows
        assert specialised.clock_periods == tuple(sorted(set(PERIODS)))
        assert full.clock_periods is None


class TestPhases:
    def test_phase_noop_without_collector(self):
        with phase("simulate"):
            pass  # must not raise or record anywhere

    def test_collect_phases_records(self):
        with collect_phases() as phases:
            with phase("simulate"):
                pass
            with phase("score"):
                pass
            with phase("simulate"):
                pass
        assert phases.calls["simulate"] == 2
        assert phases.calls["score"] == 1
        text = phases.describe()
        assert "simulate" in text and "score" in text

    def test_planned_run_attributes_phases(self, monkeypatch):
        # A warm persistent synthesis cache (the cache-enabled CI leg)
        # would legitimately skip the synthesize phase; disable it so
        # the attribution of a from-scratch run is what is asserted.
        from repro.runtime.synth_cache import SYNTH_CACHE_ENV
        monkeypatch.delenv(SYNTH_CACHE_ENV, raising=False)
        jobs = [make_job(length=80, seed=21), make_job(length=80, seed=22)]
        with collect_phases() as phases:
            PlannedBackend(SerialBackend()).run(jobs)
        assert phases.seconds.get("synthesize", 0) > 0
        assert phases.seconds.get("lower", 0) > 0
        assert phases.seconds.get("simulate", 0) > 0

    def test_explore_cli_timings_footer(self, capsys, monkeypatch):
        # backend pinned to serial: phases are recorded in the process
        # that executes them, so the multiprocess CI leg would see none.
        # A warm shared synthesis or result cache would (correctly)
        # erase the synthesize phase asserted below, so run uncached.
        from repro.runtime.synth_cache import SYNTH_CACHE_ENV
        monkeypatch.delenv(SYNTH_CACHE_ENV, raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        from repro.explore.cli import main
        exit_code = main(["--width", "16", "--max-designs", "4", "--length", "32",
                          "--backend", "serial", "--timings"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "(timings: " in out
        assert "synthesize" in out

    def test_runner_cli_timings_footer(self, capsys, tmp_path):
        from repro.experiments.runner import main
        exit_code = main(["--scale", "0.02", "--simulator", "fast",
                          "--backend", "serial",
                          "--figures", "fig9", "--no-cache", "--timings"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "(timings: " in out
