"""Tests for clock plans and timing-error trace containers."""

import pickle

import numpy as np
import pytest

from repro.exceptions import AnalysisError, TimingError
from repro.timing.clocking import PAPER_SAFE_PERIOD, ClockPlan, cpr_to_period, period_to_cpr
from repro.timing.errors import TimingErrorTrace, extract_timing_errors


class TestCpr:
    def test_paper_periods(self):
        assert cpr_to_period(0.3e-9, 0.05) == pytest.approx(0.285e-9)
        assert cpr_to_period(0.3e-9, 0.10) == pytest.approx(0.27e-9)
        assert cpr_to_period(0.3e-9, 0.15) == pytest.approx(0.255e-9)

    def test_roundtrip(self):
        assert period_to_cpr(0.3e-9, cpr_to_period(0.3e-9, 0.07)) == pytest.approx(0.07)

    def test_invalid_inputs(self):
        with pytest.raises(TimingError):
            cpr_to_period(-1.0, 0.1)
        with pytest.raises(TimingError):
            cpr_to_period(1.0, 1.0)
        with pytest.raises(TimingError):
            period_to_cpr(0.3e-9, 0.31e-9)


class TestClockPlan:
    def test_paper_plan(self):
        plan = ClockPlan.paper()
        assert plan.safe_period == pytest.approx(PAPER_SAFE_PERIOD)
        assert plan.cpr_levels == (0.05, 0.10, 0.15)
        assert plan.labels() == ["5%", "10%", "15%"]
        assert [round(period * 1e12) for period in plan.periods] == [285, 270, 255]
        assert len(plan.items()) == 3

    def test_period_for(self):
        assert ClockPlan.paper().period_for(0.2) == pytest.approx(0.24e-9)

    def test_invalid_plan(self):
        with pytest.raises(TimingError):
            ClockPlan(safe_period=-1.0)
        with pytest.raises(TimingError):
            ClockPlan(cpr_levels=(1.5,))


class TestTimingErrorTrace:
    def _trace(self):
        settled = np.array([0b0110, 0b0011, 0b1000], dtype=np.uint64)
        sampled = np.array([0b0100, 0b0011, 0b0000], dtype=np.uint64)
        return extract_timing_errors(sampled, settled, output_width=4, clock_period=1e-10)

    def test_bit_views(self):
        trace = self._trace()
        assert trace.cycles == 3
        errors = trace.error_bits()
        assert errors.shape == (3, 4)
        assert errors[0].tolist() == [0, 1, 0, 0]
        assert errors[1].tolist() == [0, 0, 0, 0]
        assert errors[2].tolist() == [0, 0, 0, 1]

    def test_timing_classes_are_complement(self):
        trace = self._trace()
        assert np.array_equal(trace.timing_classes(), 1 - trace.error_bits())

    def test_rates(self):
        trace = self._trace()
        assert trace.cycle_error_rate() == pytest.approx(2 / 3)
        assert trace.bit_error_rate().tolist() == pytest.approx([0, 1 / 3, 0, 1 / 3])

    def test_arithmetic_errors_signed(self):
        trace = self._trace()
        assert trace.arithmetic_errors().tolist() == [-2, 0, -8]

    def test_bit_views_memoized(self):
        trace = self._trace()
        assert trace.sampled_bits() is trace.sampled_bits()
        assert trace.settled_bits() is trace.settled_bits()
        assert trace.error_bits() is trace.error_bits()
        assert not trace.error_bits().flags.writeable

    def test_memo_not_pickled_and_scoring_unchanged(self):
        trace = self._trace()
        reference_errors = np.array(trace.error_bits(), copy=True)
        clone = pickle.loads(pickle.dumps(trace))
        assert "_bits_cache" not in clone.__dict__
        assert np.array_equal(clone.error_bits(), reference_errors)
        assert clone.cycle_error_rate() == pytest.approx(2 / 3)
        assert clone.bit_error_rate().tolist() == pytest.approx([0, 1 / 3, 0, 1 / 3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            TimingErrorTrace(clock_period=1e-10,
                             sampled_words=np.zeros(2, dtype=np.uint64),
                             settled_words=np.zeros(3, dtype=np.uint64),
                             output_width=4)

    def test_empty_trace_rates(self):
        trace = TimingErrorTrace(clock_period=1e-10,
                                 sampled_words=np.zeros(0, dtype=np.uint64),
                                 settled_words=np.zeros(0, dtype=np.uint64),
                                 output_width=4)
        assert trace.cycle_error_rate() == 0.0
        assert trace.bit_error_rate().tolist() == [0, 0, 0, 0]
