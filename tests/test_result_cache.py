"""Tests of the persistent on-disk result cache (repro.runtime.cache).

The contract under test: a cache hit returns the stored
characterisation bit-identically to an uncached run, across both
execution backends and both fast-tier engines; misses delegate to the
inner backend and persist atomically; corrupted or truncated entries
are recomputed, never raised; sharded entries resume chunk by chunk;
and a fully warm run executes **zero** simulation jobs.
"""

from __future__ import annotations

import dataclasses
import pickle
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import (
    StudyConfig,
    _BACKEND_INSTANCES,
    characterize_designs,
    shutdown_backends,
)
from repro.experiments.designs import exact_entry, isa_entry
from repro.ml.dataset import collect_bit_datasets
from repro.runtime import (
    CachingBackend,
    CharacterizationJob,
    MultiprocessBackend,
    SerialBackend,
    job_digest,
    trace_digest,
)
from repro.synth.flow import SynthesisOptions
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import uniform_workload

PERIODS = tuple(ClockPlan.paper().periods)


def small_job(length=200, quadruple=(4, 0, 0, 2), simulator="fast", engine="auto",
              seed=11, **kwargs):
    """A quick 16-bit characterization job (mirrors test_runtime.small_job)."""
    entry = exact_entry(16) if quadruple is None else isa_entry(quadruple, width=16)
    trace = uniform_workload(length, width=16, seed=seed)
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS,
                               simulator=simulator, engine=engine, width=16, **kwargs)


def assert_bit_identical(reference, candidate):
    """Every array of two characterisations matches exactly."""
    assert reference.name == candidate.name
    assert np.array_equal(reference.diamond_words, candidate.diamond_words)
    assert np.array_equal(reference.gold_words, candidate.gold_words)
    assert np.array_equal(reference.netlist_words, candidate.netlist_words)
    assert set(reference.timing_traces) == set(candidate.timing_traces)
    for clk, timing in reference.timing_traces.items():
        other = candidate.timing_traces[clk]
        assert np.array_equal(timing.sampled_words, other.sampled_words)
        assert np.array_equal(timing.settled_words, other.settled_words)
        assert timing.output_width == other.output_width


class CountingBackend(SerialBackend):
    """Serial backend that counts the work units it actually executes.

    Whole jobs and sub-job tasks (golden passes, timing chunks) both
    count — the sharded cold path delegates tasks, not whole jobs.
    """

    def __init__(self):
        self.executed = 0

    def run(self, jobs):
        jobs = list(jobs)
        self.executed += len(jobs)
        return super().run(jobs)

    def run_tasks(self, tasks):
        tasks = list(tasks)
        self.executed += len(tasks)
        return super().run_tasks(tasks)


class TestJobDigest:
    def test_digest_is_deterministic(self):
        assert job_digest(small_job()) == job_digest(small_job())

    def test_digest_covers_every_identity_axis(self):
        base = small_job()
        variants = [
            small_job(seed=12),                                   # trace content
            small_job(quadruple=(4, 2, 1, 2)),                    # design entry
            small_job(simulator="event"),                         # simulator tier
            small_job(engine="reference"),                        # engine tier
            small_job(collect_structural_stats=True),             # stats request
            dataclasses.replace(base, clock_periods=PERIODS[:2]),  # clock plan
            dataclasses.replace(base, output_bus="cout"),          # output bus
            small_job(synthesis=SynthesisOptions(slack_utilization=0.4)),
        ]
        digests = {job_digest(job) for job in variants}
        assert job_digest(base) not in digests
        assert len(digests) == len(variants)

    def test_trace_digest_ignores_name_not_content(self):
        trace = uniform_workload(64, width=16, seed=5)
        renamed = dataclasses.replace(trace, name="other")
        assert trace_digest(trace) == trace_digest(renamed)
        assert trace_digest(trace) != trace_digest(
            uniform_workload(64, width=16, seed=6))

    def test_unvaried_seed_normalised_away(self):
        with_seed = small_job(synthesis=SynthesisOptions(variation_seed=3))
        without = small_job(synthesis=SynthesisOptions())
        assert job_digest(with_seed) == job_digest(without)
        varied = small_job(synthesis=SynthesisOptions(variation_sigma=0.1,
                                                      variation_seed=3))
        assert job_digest(varied) != job_digest(without)

    def test_generator_seed_with_variation_rejected(self):
        job = small_job(synthesis=SynthesisOptions(
            variation_sigma=0.1, variation_seed=np.random.default_rng(3)))
        with pytest.raises(ConfigurationError):
            job_digest(job)


class TestHitMissBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        return SerialBackend().run([small_job()])[0]

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    @pytest.mark.parametrize("backend_factory",
                             [SerialBackend,
                              lambda: MultiprocessBackend(workers=2)],
                             ids=["serial", "multiprocess"])
    def test_cold_and_warm_match_uncached(self, tmp_path, backend_factory, engine):
        job = small_job(engine=engine)
        uncached = SerialBackend().run([job])[0]
        cold_cache = CachingBackend(backend_factory(), tmp_path / engine)
        [cold] = cold_cache.run([job])
        assert (cold_cache.stats.hits, cold_cache.stats.misses) == (0, 1)
        # a *fresh* instance proves persistence, not in-memory reuse
        warm_cache = CachingBackend(backend_factory(), tmp_path / engine)
        [warm] = warm_cache.run([job])
        assert (warm_cache.stats.hits, warm_cache.stats.misses) == (1, 0)
        assert_bit_identical(uncached, cold)
        assert_bit_identical(uncached, warm)
        cold_cache.close()
        warm_cache.close()

    def test_warm_run_executes_zero_jobs(self, tmp_path, reference):
        job = small_job()
        CachingBackend(SerialBackend(), tmp_path).run([job])
        inner = CountingBackend()
        [warm] = CachingBackend(inner, tmp_path).run([job])
        assert inner.executed == 0
        assert_bit_identical(reference, warm)

    def test_structural_stats_round_trip(self, tmp_path):
        job = small_job(collect_structural_stats=True)
        [cold] = CachingBackend(SerialBackend(), tmp_path).run([job])
        [warm] = CachingBackend(SerialBackend(), tmp_path).run([job])
        assert warm.structural_stats is not None
        assert np.array_equal(cold.structural_stats.position_counts,
                              warm.structural_stats.position_counts)

    def test_event_tier_round_trip(self, tmp_path):
        job = small_job(length=40, simulator="event")
        uncached = SerialBackend().run([job])[0]
        [cold] = CachingBackend(SerialBackend(), tmp_path).run([job])
        [warm] = CachingBackend(SerialBackend(), tmp_path).run([job])
        assert_bit_identical(uncached, cold)
        assert_bit_identical(uncached, warm)

    def test_mixed_batch_partial_hits(self, tmp_path):
        first, second = small_job(seed=1), small_job(seed=2)
        cache = CachingBackend(SerialBackend(), tmp_path)
        cache.run([first])
        inner = CountingBackend()
        warm_cache = CachingBackend(inner, tmp_path)
        results = warm_cache.run([first, second])
        assert inner.executed == 1  # only the unseen job is simulated
        assert (warm_cache.stats.hits, warm_cache.stats.misses) == (1, 1)
        assert_bit_identical(SerialBackend().run([second])[0], results[1])


class TestShardedEntries:
    def test_sharded_round_trip_bit_identical(self, tmp_path):
        job = small_job(length=200, collect_structural_stats=True)  # 199 transitions
        uncached = SerialBackend().run([job])[0]
        cold_cache = CachingBackend(SerialBackend(), tmp_path, shard_transitions=64)
        [cold] = cold_cache.run([job])
        assert cold_cache.stats.shard_misses == 4  # 0-64, 64-128, 128-192, 192-199
        warm_cache = CachingBackend(SerialBackend(), tmp_path, shard_transitions=64)
        [warm] = warm_cache.run([job])
        assert warm_cache.stats.shard_hits == 4
        assert warm_cache.stats.misses == 0
        assert_bit_identical(uncached, cold)
        assert_bit_identical(uncached, warm)
        assert warm.structural_stats is not None

    def test_partial_run_resumes_chunk_by_chunk(self, tmp_path):
        job = small_job(length=200)
        cold_cache = CachingBackend(SerialBackend(), tmp_path, shard_transitions=64)
        [cold] = cold_cache.run([job])
        digest = job_digest(job)
        # Simulate an interrupted run: one timing shard is missing.
        cold_cache.store.shard_path(digest, 64, 128).unlink()
        inner = CountingBackend()
        resume_cache = CachingBackend(inner, tmp_path, shard_transitions=64)
        [resumed] = resume_cache.run([job])
        assert inner.executed == 1  # exactly the missing chunk
        assert resume_cache.stats.shard_hits == 3
        assert resume_cache.stats.shard_misses == 1
        assert_bit_identical(cold, resumed)

    def test_shard_threshold_boundary(self, tmp_path):
        # 65 vectors -> 64 transitions: not above a 64-transition
        # threshold, so the entry stays monolithic.
        job = small_job(length=65)
        cache = CachingBackend(SerialBackend(), tmp_path, shard_transitions=64)
        cache.run([job])
        assert cache.store.result_path(job_digest(job)).exists()
        assert not cache.store.golden_path(job_digest(job)).exists()

    def test_invalid_shard_threshold(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CachingBackend(SerialBackend(), tmp_path, shard_transitions=0)


class TestCorruptionHandling:
    def test_truncated_result_recomputed(self, tmp_path):
        job = small_job()
        uncached = SerialBackend().run([job])[0]
        cache = CachingBackend(SerialBackend(), tmp_path)
        cache.run([job])
        path = cache.store.result_path(job_digest(job))
        path.write_bytes(path.read_bytes()[:16])  # truncate mid-pickle
        recover_cache = CachingBackend(SerialBackend(), tmp_path)
        [recovered] = recover_cache.run([job])
        assert recover_cache.stats.corrupt == 1
        assert recover_cache.stats.misses == 1
        assert_bit_identical(uncached, recovered)
        # the damaged file was discarded and replaced by a healthy one
        [warm] = CachingBackend(SerialBackend(), tmp_path).run([job])
        assert_bit_identical(uncached, warm)

    def test_truncated_shard_recomputed(self, tmp_path):
        job = small_job(length=200)
        cache = CachingBackend(SerialBackend(), tmp_path, shard_transitions=64)
        [cold] = cache.run([job])
        shard = cache.store.shard_path(job_digest(job), 0, 64)
        shard.write_bytes(b"not a pickle")
        recover_cache = CachingBackend(SerialBackend(), tmp_path,
                                       shard_transitions=64)
        [recovered] = recover_cache.run([job])
        assert recover_cache.stats.corrupt == 1
        assert_bit_identical(cold, recovered)

    def test_foreign_format_recomputed(self, tmp_path):
        job = small_job()
        cache = CachingBackend(SerialBackend(), tmp_path)
        path = cache.store.result_path(job_digest(job))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": 999, "payload": None}))
        [result] = cache.run([job])
        assert cache.stats.corrupt == 1
        assert_bit_identical(SerialBackend().run([job])[0], result)


class TestConcurrentWriters:
    def test_racing_writers_never_expose_torn_files(self, tmp_path):
        cache = CachingBackend(SerialBackend(), tmp_path)
        payload = {"blob": np.arange(4096, dtype=np.uint64)}
        path = cache.store.result_path("ab" + "0" * 62)

        def write_and_read(_):
            cache.store.store(path, payload)
            loaded = cache.store.load(path)
            return loaded is not None and np.array_equal(loaded["blob"],
                                                         payload["blob"])

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(write_and_read, range(64)))
        assert all(outcomes)
        assert cache.stats.corrupt == 0
        assert not list(path.parent.glob(".tmp-*"))  # no leaked temp files

    def test_two_processes_one_cache_dir(self, tmp_path):
        # Multiprocess workers of two independent caching runs share the
        # directory; both runs must succeed and agree bit for bit.
        job = small_job(length=130)
        first = CachingBackend(MultiprocessBackend(workers=2), tmp_path)
        second = CachingBackend(MultiprocessBackend(workers=2), tmp_path)
        try:
            [a] = first.run([job])
            [b] = second.run([job])
            assert_bit_identical(a, b)
        finally:
            first.close()
            second.close()


class TestInventoryIndex:
    """The incrementally maintained (mtime, bytes) inventory index."""

    @staticmethod
    def _ground_truth(store):
        """Fresh-scan inventory, independent of the index."""
        truth = {}
        for prefix in store.root.iterdir():
            if not prefix.is_dir():
                continue
            for entry in prefix.iterdir():
                if not entry.is_dir():
                    continue
                total = sum(item.stat().st_size for item in entry.iterdir())
                truth[entry] = total
        return truth

    def test_index_tracks_stores_and_prunes(self, tmp_path):
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path, limit_bytes=10_000_000)
        digests = [format(index, "02x") + "f" * 62 for index in range(6)]
        for index, digest in enumerate(digests):
            store.store(store.result_path(digest),
                        {"blob": np.arange(64 * (index + 1), dtype=np.uint64)})
        truth = self._ground_truth(store)
        indexed = {entry: size for _, size, entry in store.entry_inventory()}
        assert indexed == truth
        assert store.total_bytes() == sum(truth.values())
        # grow one entry and overwrite another: index follows without rescans
        store.store(store.golden_path(digests[0]), {"golden": np.ones(128)})
        store.store(store.result_path(digests[1]),
                    {"blob": np.arange(1024, dtype=np.uint64)})
        indexed = {entry: size for _, size, entry in store.entry_inventory()}
        assert indexed == self._ground_truth(store)

    def test_index_avoids_rescans_after_first_use(self, tmp_path, monkeypatch):
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path)
        digests = [format(index, "02x") + "e" * 62 for index in range(4)]
        for digest in digests:
            store.store(store.result_path(digest), {"blob": np.zeros(8)})
        store.entry_inventory()  # first use: full scan builds the index
        scans = []
        original = ResultStore._scan_entry

        def counting_scan(self, entry):
            scans.append(entry)
            return original(self, entry)

        monkeypatch.setattr(ResultStore, "_scan_entry", counting_scan)
        store.store(store.result_path(digests[0]), {"blob": np.zeros(16)})
        store.load(store.result_path(digests[1]))
        store.entry_inventory()
        assert scans == []  # in-process updates never rescan entries

    def test_own_write_does_not_mask_concurrent_entry(self, tmp_path):
        """Writing into a prefix must not hide another process's entry there.

        Regression: recording the prefix mtime after our own write used
        to swallow a concurrent writer's entry created in between.
        """
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path)
        store.store(store.result_path("aa" + "1" * 62), {"blob": np.zeros(8)})
        store.entry_inventory()  # index built
        other = ResultStore(tmp_path)  # another process, in spirit
        other.store(other.result_path("aa" + "2" * 62), {"blob": np.zeros(32)})
        # our next writes land in the same prefix: one into an existing
        # entry, one creating a new entry
        store.store(store.golden_path("aa" + "1" * 62), {"golden": np.zeros(4)})
        store.store(store.result_path("aa" + "3" * 62), {"blob": np.zeros(16)})
        seen = {entry.name for _, _, entry in store.entry_inventory()}
        assert "aa" + "2" * 62 in seen
        assert len(seen) == 3
        indexed = {entry: size for _, size, entry in store.entry_inventory()}
        assert indexed == self._ground_truth(store)

    def test_index_sees_external_writers(self, tmp_path):
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path)
        store.store(store.result_path("aa" + "d" * 62), {"blob": np.zeros(8)})
        store.entry_inventory()
        # a second store (another process, in spirit) adds entries — one
        # in a fresh prefix, one next to the existing entry
        other = ResultStore(tmp_path)
        other.store(other.result_path("bb" + "d" * 62), {"blob": np.zeros(32)})
        other.store(other.result_path("aa" + "c" * 62), {"blob": np.zeros(16)})
        indexed = {entry: size for _, size, entry in store.entry_inventory()}
        assert indexed == self._ground_truth(store)

    def test_load_refreshes_eviction_order(self, tmp_path):
        import os
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path)
        old_digest, new_digest = "aa" + "b" * 62, "cc" + "b" * 62
        store.store(store.result_path(old_digest), {"blob": np.zeros(64)})
        store.store(store.result_path(new_digest), {"blob": np.zeros(64)})
        os.utime(store.result_path(old_digest), (1, 1))
        store.entry_inventory()
        # budget fits exactly one entry, so the prune must evict one
        store.limit_bytes = store.total_bytes() // 2 + 1
        # loading the back-dated entry refreshes its mtime in the index,
        # so the prune evicts the *other* entry
        store.load(store.result_path(old_digest))
        assert store.prune_to_limit() == 1
        remaining = [entry for _, _, entry in store.entry_inventory()]
        assert remaining == [store.entry_dir(old_digest)]

    def test_corrupt_discard_updates_index(self, tmp_path):
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path)
        digest = "dd" + "a" * 62
        store.store(store.result_path(digest), {"blob": np.zeros(256)})
        store.entry_inventory()
        store.result_path(digest).write_bytes(b"garbage")
        assert store.load(store.result_path(digest)) is None  # discarded
        indexed = {entry: size for _, size, entry in store.entry_inventory()}
        assert indexed == self._ground_truth(store)


class TestStudyConfigIntegration:
    def test_cache_dir_env_read_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = StudyConfig()
        assert config.cache_dir == str(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert config.cache_dir == str(tmp_path)  # read once at construction
        assert StudyConfig().cache_dir is None

    def test_runtime_backend_wraps_with_cache(self, tmp_path):
        # knobs pinned explicitly so the test holds under the CI env
        # legs ($REPRO_BACKEND / $REPRO_CACHE_DIR set suite-wide)
        try:
            config = StudyConfig(backend="serial", cache_dir=str(tmp_path))
            backend = config.runtime_backend()
            assert isinstance(backend, CachingBackend)
            assert backend is config.runtime_backend()  # shared instance
            assert backend.describe() == "cache[planned[serial]]"
            uncached = StudyConfig(backend="serial", cache_dir=None)
            assert not isinstance(uncached.runtime_backend(), CachingBackend)
        finally:
            shutdown_backends()

    def test_characterize_designs_warm_run_zero_jobs(self, tmp_path):
        try:
            config = StudyConfig(characterization_length=120, training_length=120,
                                 evaluation_length=100, seed=4, simulator="fast",
                                 width=16, cache_dir=str(tmp_path))
            entries = [isa_entry((4, 0, 0, 2), width=16), exact_entry(16)]
            trace = config.characterization_trace()
            cold = characterize_designs(entries, trace, config)
            backend = config.runtime_backend()
            misses_after_cold = backend.stats.misses
            warm = characterize_designs(entries, trace, config)
            assert backend.stats.misses == misses_after_cold  # zero new simulation
            assert backend.stats.hits == len(entries)
            for reference, candidate in zip(cold, warm):
                assert_bit_identical(reference, candidate)
        finally:
            shutdown_backends()

    def test_collect_bit_datasets_cache_dir(self, tmp_path):
        job = small_job(length=100)
        [cold] = collect_bit_datasets([job], cache_dir=str(tmp_path))
        [warm] = collect_bit_datasets([job], cache_dir=str(tmp_path))
        for clk in PERIODS:
            for reference, candidate in zip(cold[clk], warm[clk]):
                assert np.array_equal(reference.features, candidate.features)
                assert np.array_equal(reference.labels, candidate.labels)


class TestEnvParsingRegressions:
    """Malformed runtime env vars raise ConfigurationError, not ValueError."""

    def test_malformed_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS.*'auto'"):
            StudyConfig()

    def test_malformed_trace_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "fast")
        with pytest.raises(ConfigurationError, match="REPRO_TRACE_SCALE.*'fast'"):
            StudyConfig()

    def test_empty_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        config = StudyConfig()
        assert config.workers is None
        assert config.trace_scale == 1.0
        assert config.cache_dir is None


class TestPoolLifecycle:
    def test_shutdown_backends_closes_shared_pools(self):
        config = StudyConfig(backend="multiprocess", workers=2, cache_dir=None)
        backend = config.runtime_backend()
        job = small_job(length=70)
        backend.run([job])
        pool_backend = backend.inner  # planner wraps the shared raw backend
        assert pool_backend._pool is not None
        assert _BACKEND_INSTANCES
        shutdown_backends()
        assert pool_backend._pool is None
        assert not _BACKEND_INSTANCES
        # idempotent, and the registry repopulates lazily afterwards
        shutdown_backends()
        assert config.runtime_backend() is not backend


class TestSliceNameComposition:
    def test_nested_slices_use_absolute_positions(self):
        trace = uniform_workload(200, width=16, seed=1)  # named uniform16x200
        outer = trace.slice(64, 129)
        assert outer.name == "uniform16x200[64:129]"
        inner = outer.slice(0, 33)
        assert inner.name == "uniform16x200[64:97]"
        assert np.array_equal(inner.a, trace.a[64:97])
        deeper = inner.slice(10, 20)
        assert deeper.name == "uniform16x200[74:84]"
        assert np.array_equal(deeper.a, trace.a[74:84])

    def test_open_ended_suffixes_compose(self):
        trace = uniform_workload(100, width=16, seed=1)
        head = trace.take(50)           # uniform16x100[:50]
        assert head.slice(10, 20).name == "uniform16x100[10:20]"
        _, tail = trace.split(0.5)      # uniform16x100[50:]
        assert tail.slice(10, 20).name == "uniform16x100[60:70]"
        assert np.array_equal(tail.slice(10, 20).a, trace.a[60:70])
